//! The Harris lock-free linked list (Harris, DISC 2001), with Michael's
//! hazard-compatible `find` (PODC 2002): traversals physically unlink
//! marked nodes they encounter, and the thread whose compare-and-swap
//! performs the unlink is the unique retirer of the node.
//!
//! Node layout (2 words): `[key, next]`, with the deletion mark in bit 0
//! of `next`. The list is bracketed by sentinels with keys `0` and
//! `u64::MAX`.
//!
//! Operation bodies are written against the typed reclamation API
//! (`st_reclaim::mem`, see docs/MEMORY_API.md): protections are typed
//! guard handles from a per-block [`mem::GuardPool`] (sized by
//! [`guard_requirement`]), nodes are reached through [`mem::Shared`]
//! borrows, and the unlink CAS mints the [`mem::Unlinked`] token that is
//! the only path to retire. Every typed call compiles to the identical
//! raw `OpMem` instruction the hand-wired code issued, so schedules,
//! cycle counts, and the committed figures are unchanged.

use st_machine::Cpu;
use st_reclaim::mem::{self, Guard, GuardPool, GuardRequirement, Mem, NodeType, Owned};
use st_reclaim::SchemeThread;
use st_simheap::{Addr, Heap, TaggedPtr, Word};
use st_simhtm::Abort;
use stacktrack::{OpMem, Step};
use std::sync::Arc;

/// Operation ids (index the split predictor).
pub const OP_CONTAINS: u32 = 0;
/// Insert operation id.
pub const OP_INSERT: u32 = 1;
/// Delete operation id.
pub const OP_DELETE: u32 = 2;

/// Key word offset within a node.
pub const NODE_KEY: u64 = 0;
/// Next-pointer word offset within a node.
pub const NODE_NEXT: u64 = 1;
/// Node size in words.
pub const NODE_WORDS: usize = 2;

/// Shadow-stack slots used by list operations.
pub const LIST_SLOTS: usize = 7;
/// Guard slots used by list operations.
pub const LIST_GUARDS: usize = 3;

/// Node-layout marker typing the list's [`mem::Atomic`] links and
/// [`mem::Shared`] borrows.
#[derive(Debug, Clone, Copy)]
pub struct ListNode;

impl NodeType for ListNode {
    const WORDS: usize = NODE_WORDS;
}

/// The list's declared guard requirement: `prev`/`cur`/`next` protected
/// at once. Consumed by `SchemeFactoryBuilder::guard_requirement` to
/// derive `ReclaimConfig::hazard_slots`.
pub const fn guard_requirement() -> GuardRequirement {
    GuardRequirement::new(LIST_GUARDS)
}

// Local slot assignment.
const PHASE: usize = 0;
const PREV: usize = 1;
const CUR: usize = 2;
const NEXT: usize = 3;
const NODE: usize = 4;
const CKEY: usize = 5;
const CONT: usize = 6;

// Phases.
const P_FIND_START: Word = 0;
const P_FIND_STEP: Word = 1;
const P_INSERT: Word = 2;
const P_DELETE_MARK: Word = 3;
const P_DELETE_UNLINK: Word = 4;
const P_DONE_OK: Word = 5;
const P_FIND_ADVANCE: Word = 6;

/// The shared shape of one Harris list: its sentinel addresses.
///
/// `Copy` so operation bodies can capture it by value and stay `'static`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListShape {
    /// Head sentinel (key 0).
    pub head: Addr,
    /// Tail sentinel (key `u64::MAX`).
    pub tail: Addr,
}

impl ListShape {
    /// Allocates an empty list (untimed; structure setup).
    pub fn new_untimed(heap: &Heap) -> Self {
        let head = heap
            .alloc_untimed(NODE_WORDS)
            .expect("heap too small for list sentinels");
        let tail = heap
            .alloc_untimed(NODE_WORDS)
            .expect("heap too small for list sentinels");
        heap.poke(head, NODE_KEY, 0);
        heap.poke(tail, NODE_KEY, u64::MAX);
        heap.poke(head, NODE_NEXT, tail.raw());
        heap.poke(tail, NODE_NEXT, 0);
        Self { head, tail }
    }

    /// Inserts `key` directly, bypassing the concurrency protocol
    /// (untimed; initial population before the measured run).
    pub fn insert_untimed(&self, heap: &Heap, key: u64) -> bool {
        assert!(key > 0 && key < u64::MAX, "key range");
        let mut prev = self.head;
        let mut cur = Addr::from_raw(heap.peek(prev, NODE_NEXT));
        loop {
            let ckey = heap.peek(cur, NODE_KEY);
            if ckey == key {
                return false;
            }
            if ckey > key {
                let node = heap
                    .alloc_untimed(NODE_WORDS)
                    .expect("heap too small for initial population");
                heap.poke(node, NODE_KEY, key);
                heap.poke(node, NODE_NEXT, cur.raw());
                heap.poke(prev, NODE_NEXT, node.raw());
                return true;
            }
            prev = cur;
            cur = Addr::from_raw(heap.peek(cur, NODE_NEXT));
        }
    }

    /// Reads the current key set without charging time (tests/validation).
    /// Marked (logically deleted) nodes are excluded.
    pub fn collect_keys_untimed(&self, heap: &Heap) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = TaggedPtr::from_word(heap.peek(self.head, NODE_NEXT));
        while !cur.is_null() {
            let addr = cur.addr();
            if addr == self.tail {
                break;
            }
            let next = TaggedPtr::from_word(heap.peek(addr, NODE_NEXT));
            if !next.marked() {
                keys.push(heap.peek(addr, NODE_KEY));
            }
            cur = next;
        }
        keys
    }

    /// Checks structural invariants (strictly sorted, ends at the tail).
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn check_invariants_untimed(&self, heap: &Heap) {
        let mut last = 0;
        let mut cur = TaggedPtr::from_word(heap.peek(self.head, NODE_NEXT));
        loop {
            assert!(!cur.is_null(), "chain must end at the tail sentinel");
            let addr = cur.addr();
            if addr == self.tail {
                return;
            }
            assert!(heap.is_live(addr), "reachable node {addr:?} must be live");
            let key = heap.peek(addr, NODE_KEY);
            let next = TaggedPtr::from_word(heap.peek(addr, NODE_NEXT));
            // Order holds across marked nodes too; equal keys only as a
            // marked node followed by its unmarked replacement.
            assert!(
                key > last || (key == last && !next.marked()),
                "key {key} out of order after {last}"
            );
            last = key;
            cur = next;
        }
    }
}

/// One step of Michael's `find`: leaves `PREV`/`CUR`/`NEXT`/`CKEY` locals
/// describing the first unmarked node with key >= `key`, then jumps to the
/// continuation phase stored in `CONT`. Returns the `Step` for this block.
fn find_step(
    shape: ListShape,
    key: u64,
    mem: &mut Mem<'_, '_>,
    g_prev: &mut Guard,
    g_cur: &mut Guard,
    g_next: &mut Guard,
) -> Result<Step, Abort> {
    let phase = mem.local(PHASE);
    if phase == P_FIND_START {
        let head = shape.head;
        let cur = mem::Atomic::<ListNode>::root(head, NODE_NEXT).load(mem, g_cur)?;
        // The head sentinel is never deleted and never reclaimed, so its
        // next is unmarked and its own word may be shielded root-style.
        g_prev.shield::<ListNode>(mem, head.raw());
        mem.set_local(PREV, head.raw());
        mem.set_local(CUR, cur.word());
        mem.set_local(PHASE, P_FIND_STEP);
        return Ok(Step::Continue);
    }
    if phase == P_FIND_ADVANCE {
        // Advance: prev <- cur, cur <- next (guards rotate in the same
        // order). The shuffle runs in its own block, like the compiled
        // code it models: the pointer load is one instruction, the
        // register/stack moves are later ones, and a segment boundary may
        // fall in between. A commit here republishes the frame with `cur`
        // shifted into a lower (possibly already-scanned) slot without
        // touching any heap word a concurrent reclaimer wrote — the
        // torn-snapshot window the scan's consistency re-read rejects.
        // Both values are still covered by the guards they rotate out of,
        // which is what licenses the fence-free `shield`.
        let cur = mem.local(CUR);
        let next = TaggedPtr::from_word(mem.local(NEXT));
        g_prev.shield::<ListNode>(mem, cur);
        g_cur.shield::<ListNode>(mem, next.addr().raw());
        mem.set_local(PREV, cur);
        mem.set_local(CUR, next.addr().raw());
        mem.set_local(PHASE, P_FIND_STEP);
        return Ok(Step::Continue);
    }
    debug_assert_eq!(phase, P_FIND_STEP);

    // Re-materialize the borrows the previous block left protected in
    // these guards (the words come straight from the shadow locals that
    // block stored).
    let prev = g_prev.assume_protected::<ListNode>(mem.local(PREV));
    let cur = g_cur.assume_protected::<ListNode>(mem.local(CUR));
    let ckey = cur.read(mem, NODE_KEY)?;
    let next = cur.link::<ListNode>(NODE_NEXT).load(mem, g_next)?;

    if next.marked() {
        // `cur` is logically deleted: help unlink it. The winner of this
        // CAS holds the `Unlinked` proof and is the unique retirer.
        let next_word = next.addr_word();
        match prev
            .link::<ListNode>(NODE_NEXT)
            .cas_unlink(mem, cur, next_word)?
        {
            Ok(unlinked) => {
                unlinked.retire(mem)?;
                g_cur.shield::<ListNode>(mem, next_word);
                mem.set_local(CUR, next_word);
            }
            Err(_) => {
                // prev moved under us: restart the search.
                mem.set_local(PHASE, P_FIND_START);
            }
        }
        return Ok(Step::Continue);
    }

    if ckey >= key {
        mem.set_local(NEXT, next.word());
        mem.set_local(CKEY, ckey);
        let cont = mem.local(CONT);
        mem.set_local(PHASE, cont);
        return Ok(Step::Continue);
    }

    // Not found yet: stash the successor and advance in the next block.
    // (`next` stays protected by its guard across the boundary, so the
    // split is hazard-safe: every retained pointer keeps a guard.)
    mem.set_local(NEXT, next.word());
    mem.set_local(PHASE, P_FIND_ADVANCE);
    Ok(Step::Continue)
}

/// Body of `contains(key)`.
///
/// Uses the same helping `find` as mutators (Michael's variant), so every
/// traversal is hazard-safe under every scheme.
pub fn contains_body(
    shape: ListShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let mut g_prev = guards.guard();
        let mut g_cur = guards.guard();
        let mut g_next = guards.guard();
        let phase = mem.local(PHASE);
        match phase {
            P_FIND_START | P_FIND_STEP | P_FIND_ADVANCE => {
                if phase == P_FIND_START {
                    mem.set_local(CONT, P_DONE_OK);
                }
                find_step(shape, key, &mut mem, &mut g_prev, &mut g_cur, &mut g_next)
            }
            P_DONE_OK => {
                let found = mem.local(CKEY) == key;
                Ok(Step::Done(u64::from(found)))
            }
            other => unreachable!("contains phase {other}"),
        }
    }
}

/// Body of `insert(key)`: returns 1 if the key was inserted, 0 if present.
pub fn insert_body(
    shape: ListShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let mut g_prev = guards.guard();
        let mut g_cur = guards.guard();
        let mut g_next = guards.guard();
        let phase = mem.local(PHASE);
        match phase {
            P_FIND_START | P_FIND_STEP | P_FIND_ADVANCE => {
                if phase == P_FIND_START {
                    mem.set_local(CONT, P_INSERT);
                }
                find_step(shape, key, &mut mem, &mut g_prev, &mut g_cur, &mut g_next)
            }
            P_INSERT => {
                if mem.local(CKEY) == key {
                    // Already present; dispose of a node kept from a
                    // failed attempt (never published, so the unpublished
                    // drop path applies).
                    if let Some(node) = Owned::<ListNode>::unstash(mem.local(NODE)) {
                        node.dispose(&mut mem)?;
                        mem.set_local(NODE, 0);
                    }
                    return Ok(Step::Done(0));
                }
                let prev = g_prev.assume_protected::<ListNode>(mem.local(PREV));
                let cur = mem.local(CUR);
                let node = match Owned::<ListNode>::unstash(mem.local(NODE)) {
                    None => {
                        let node = mem.alloc::<ListNode>();
                        node.store(&mut mem, NODE_KEY, key)?;
                        mem.set_local(NODE, node.word());
                        node
                    }
                    Some(node) => node,
                };
                node.store(&mut mem, NODE_NEXT, cur)?;
                match prev
                    .link::<ListNode>(NODE_NEXT)
                    .cas_publish(&mut mem, cur, node)?
                {
                    Ok(()) => Ok(Step::Done(1)),
                    Err((lost, _actual)) => {
                        // Lost the race; search again, keeping the node
                        // (its word is already stashed in the NODE local).
                        let _ = lost.stash();
                        mem.set_local(PHASE, P_FIND_START);
                        Ok(Step::Continue)
                    }
                }
            }
            other => unreachable!("insert phase {other}"),
        }
    }
}

/// Body of `delete(key)`: returns 1 if this thread removed the key.
pub fn delete_body(
    shape: ListShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let mut g_prev = guards.guard();
        let mut g_cur = guards.guard();
        let mut g_next = guards.guard();
        let phase = mem.local(PHASE);
        match phase {
            P_FIND_START | P_FIND_STEP | P_FIND_ADVANCE => {
                if phase == P_FIND_START && mem.local(CONT) == 0 {
                    mem.set_local(CONT, P_DELETE_MARK);
                }
                find_step(shape, key, &mut mem, &mut g_prev, &mut g_cur, &mut g_next)
            }
            P_DELETE_MARK => {
                if mem.local(CKEY) != key {
                    return Ok(Step::Done(0));
                }
                let cur = g_cur.assume_protected::<ListNode>(mem.local(CUR));
                let next = TaggedPtr::from_word(mem.local(NEXT));
                debug_assert!(!next.marked());
                // Logical delete is a tag flip, not an unlink: `cas_word`
                // can never mint an `Unlinked` proof.
                match cur.link::<ListNode>(NODE_NEXT).cas_word(
                    &mut mem,
                    next.word(),
                    next.with_mark(true).word(),
                )? {
                    Ok(_) => {
                        mem.set_local(PHASE, P_DELETE_UNLINK);
                        Ok(Step::Continue)
                    }
                    Err(_) => {
                        // Someone moved `cur.next` (insert after cur, or a
                        // competing delete): search again.
                        mem.set_local(PHASE, P_FIND_START);
                        Ok(Step::Continue)
                    }
                }
            }
            P_DELETE_UNLINK => {
                let prev = g_prev.assume_protected::<ListNode>(mem.local(PREV));
                let cur = g_cur.assume_protected::<ListNode>(mem.local(CUR));
                let next = TaggedPtr::from_word(mem.local(NEXT));
                match prev.link::<ListNode>(NODE_NEXT).cas_unlink(
                    &mut mem,
                    cur,
                    next.addr().raw(),
                )? {
                    Ok(unlinked) => {
                        unlinked.retire(&mut mem)?;
                        Ok(Step::Done(1))
                    }
                    Err(_) => {
                        // Let the helping find unlink it; rerun the search
                        // purely for physical cleanup, then report success.
                        mem.set_local(CONT, P_DONE_OK);
                        mem.set_local(PHASE, P_FIND_START);
                        Ok(Step::Continue)
                    }
                }
            }
            P_DONE_OK => Ok(Step::Done(1)),
            other => unreachable!("delete phase {other}"),
        }
    }
}

/// High-level handle bundling the shape with convenience methods.
#[derive(Debug)]
pub struct LockFreeList {
    shape: ListShape,
    heap: Arc<Heap>,
}

impl LockFreeList {
    /// Creates an empty list on `heap`.
    pub fn new(heap: Arc<Heap>) -> Self {
        let shape = ListShape::new_untimed(&heap);
        Self { shape, heap }
    }

    /// The copyable shape (for building `'static` operation bodies).
    pub fn shape(&self) -> ListShape {
        self.shape
    }

    /// The heap this list lives on.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Membership test through a scheme executor.
    pub fn contains(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = contains_body(self.shape, key);
        th.run_op(cpu, OP_CONTAINS, LIST_SLOTS, &mut body) == 1
    }

    /// Insert through a scheme executor.
    pub fn insert(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = insert_body(self.shape, key);
        th.run_op(cpu, OP_INSERT, LIST_SLOTS, &mut body) == 1
    }

    /// Delete through a scheme executor.
    pub fn delete(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = delete_body(self.shape, key);
        th.run_op(cpu, OP_DELETE, LIST_SLOTS, &mut body) == 1
    }

    /// Current key set (untimed snapshot).
    pub fn collect_keys(&self) -> Vec<u64> {
        self.shape.collect_keys_untimed(&self.heap)
    }

    /// Structural invariant check.
    pub fn check_invariants(&self) {
        self.shape.check_invariants_untimed(&self.heap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{all_scheme_factories, scheme_env, test_cpu};
    use st_reclaim::Scheme;

    #[test]
    fn untimed_population_and_snapshot() {
        let (heap, _) = scheme_env();
        let shape = ListShape::new_untimed(&heap);
        for k in [5u64, 1, 9, 3] {
            assert!(shape.insert_untimed(&heap, k));
        }
        assert!(!shape.insert_untimed(&heap, 5), "duplicate rejected");
        assert_eq!(shape.collect_keys_untimed(&heap), vec![1, 3, 5, 9]);
        shape.check_invariants_untimed(&heap);
    }

    #[test]
    fn set_semantics_under_every_scheme() {
        for scheme in Scheme::all() {
            let (factory, heap) = all_scheme_factories(scheme, 1);
            let list = LockFreeList::new(heap);
            let mut th = factory.thread(0);
            let mut cpu = test_cpu(0);

            assert!(!list.contains(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert!(list.insert(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert!(!list.insert(th.as_mut(), &mut cpu, 7), "{scheme:?} dup");
            assert!(list.contains(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert!(list.insert(th.as_mut(), &mut cpu, 3), "{scheme:?}");
            assert!(list.insert(th.as_mut(), &mut cpu, 11), "{scheme:?}");
            assert_eq!(list.collect_keys(), vec![3, 7, 11], "{scheme:?}");
            assert!(list.delete(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert!(!list.delete(th.as_mut(), &mut cpu, 7), "{scheme:?} gone");
            assert!(!list.contains(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert_eq!(list.collect_keys(), vec![3, 11], "{scheme:?}");
            list.check_invariants();
            th.teardown(&mut cpu);
        }
    }

    #[test]
    fn deleted_nodes_are_reclaimed_by_stacktrack() {
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 1);
        let list = LockFreeList::new(heap.clone());
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        let live_before = heap.stats().alloc.live_objects;
        for k in 1..=50u64 {
            assert!(list.insert(th.as_mut(), &mut cpu, k));
        }
        for k in 1..=50u64 {
            assert!(list.delete(th.as_mut(), &mut cpu, k));
        }
        th.teardown(&mut cpu);
        assert_eq!(
            heap.stats().alloc.live_objects,
            live_before,
            "all 50 nodes must be reclaimed"
        );
        assert_eq!(list.collect_keys(), Vec::<u64>::new());
    }

    #[test]
    fn interleaved_mutators_keep_the_list_sound() {
        // Two threads stepping operation-by-operation through the same
        // keys under StackTrack; determinism comes from manual stepping.
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 2);
        let list = LockFreeList::new(heap);
        let mut a = factory.thread(0);
        let mut b = factory.thread(1);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        let shape = list.shape();
        for round in 0..30u64 {
            let ka = round % 10 + 1;
            let kb = round % 7 + 1;
            let mut body_a = insert_body(shape, ka);
            let mut body_b = delete_body(shape, kb);
            while a.idle_work_pending() {
                a.step_idle(&mut cpu_a);
            }
            while b.idle_work_pending() {
                b.step_idle(&mut cpu_b);
            }
            a.begin_op(&mut cpu_a, OP_INSERT, LIST_SLOTS);
            b.begin_op(&mut cpu_b, OP_DELETE, LIST_SLOTS);
            let mut done_a = false;
            let mut done_b = false;
            while !done_a || !done_b {
                if !done_a {
                    done_a = a.step_op(&mut cpu_a, &mut body_a).is_some();
                }
                if !done_b {
                    done_b = b.step_op(&mut cpu_b, &mut body_b).is_some();
                }
            }
            list.check_invariants();
        }
    }
}
