//! Per-thread StackTrack statistics (Figures 4-5 and the scan table).
//!
//! [`StThreadStats`] is built on the `st-obs` primitives: aborts are
//! attributed through a [`CauseCounts`] block and the paper's three skewed
//! distributions (segment lengths, scan depths, retire-to-free latency)
//! are recorded in [`LogHistogram`]s rather than sum-only counters. The
//! whole block reports into a [`MetricsRegistry`] under the `st.`
//! namespace via [`StThreadStats::report`].

use st_machine::Cycles;
use st_obs::{CauseCounts, LogHistogram, MetricsRegistry};

/// Counters a [`crate::StThread`] accumulates while executing operations.
#[derive(Debug, Default, Clone)]
pub struct StThreadStats {
    /// Operations completed.
    pub ops: u64,
    /// Operations that ran (at least partly) on the slow path.
    pub slow_ops: u64,
    /// Operations forced onto the slow path at start (Figure 5 mode).
    pub forced_slow_ops: u64,
    /// Segments committed.
    pub committed_segments: u64,
    /// Sum of committed segment lengths, in basic blocks.
    pub sum_segment_lengths: u64,
    /// Sum over operations of segments committed in that operation.
    pub sum_splits_per_op: u64,
    /// Segment aborts observed by the split engine.
    pub segment_aborts: u64,
    /// Calls to `FREE` (retires reaching the free set).
    pub free_calls: u64,
    /// `SCAN_AND_FREE` invocations.
    pub scans: u64,
    /// Words inspected across all scans.
    pub scan_words: u64,
    /// Thread inspections restarted by the split-counter protocol.
    pub scan_retries: u64,
    /// Objects actually freed.
    pub frees_completed: u64,
    /// Candidates kept alive by a found reference (returned to the set).
    pub survivors: u64,
    /// Virtual cycles spent inside scans.
    pub scan_cycles: Cycles,
    /// Virtual cycles spent probing scanned words against the candidate
    /// batch (index build + lookups), across all scans.
    pub scan_probe_cycles: Cycles,
    /// Thread inspections performed.
    pub threads_inspected: u64,
    /// Segment aborts attributed by cause (the canonical taxonomy).
    pub abort_causes: CauseCounts,
    /// Distribution of committed segment lengths, in basic blocks.
    pub seg_lengths: LogHistogram,
    /// Distribution of words inspected per completed scan.
    pub scan_depths: LogHistogram,
    /// Distribution of retire-to-free latency, in virtual cycles.
    pub free_latency: LogHistogram,
    /// Distribution of candidate-probe cycles per completed scan (the
    /// `scan.candidate_probe_cycles` metric).
    pub candidate_probe_cycles: LogHistogram,
}

impl StThreadStats {
    /// Average committed segment length, in basic blocks.
    pub fn avg_segment_length(&self) -> f64 {
        ratio(self.sum_segment_lengths, self.committed_segments)
    }

    /// Average committed segments ("splits") per operation.
    pub fn avg_splits_per_op(&self) -> f64 {
        ratio(self.sum_splits_per_op, self.ops)
    }

    /// Average words inspected per scan (the paper's "average stack depth
    /// inspected").
    pub fn avg_scan_depth(&self) -> f64 {
        ratio(self.scan_words, self.scans)
    }

    /// Element-wise sum.
    pub fn merged(&self, o: &StThreadStats) -> StThreadStats {
        StThreadStats {
            ops: self.ops + o.ops,
            slow_ops: self.slow_ops + o.slow_ops,
            forced_slow_ops: self.forced_slow_ops + o.forced_slow_ops,
            committed_segments: self.committed_segments + o.committed_segments,
            sum_segment_lengths: self.sum_segment_lengths + o.sum_segment_lengths,
            sum_splits_per_op: self.sum_splits_per_op + o.sum_splits_per_op,
            segment_aborts: self.segment_aborts + o.segment_aborts,
            free_calls: self.free_calls + o.free_calls,
            scans: self.scans + o.scans,
            scan_words: self.scan_words + o.scan_words,
            scan_retries: self.scan_retries + o.scan_retries,
            frees_completed: self.frees_completed + o.frees_completed,
            survivors: self.survivors + o.survivors,
            scan_cycles: self.scan_cycles + o.scan_cycles,
            scan_probe_cycles: self.scan_probe_cycles + o.scan_probe_cycles,
            threads_inspected: self.threads_inspected + o.threads_inspected,
            abort_causes: self.abort_causes.merged(&o.abort_causes),
            seg_lengths: merged_hist(&self.seg_lengths, &o.seg_lengths),
            scan_depths: merged_hist(&self.scan_depths, &o.scan_depths),
            free_latency: merged_hist(&self.free_latency, &o.free_latency),
            candidate_probe_cycles: merged_hist(
                &self.candidate_probe_cycles,
                &o.candidate_probe_cycles,
            ),
        }
    }

    /// Reports every counter and histogram into `reg` under the `st.`
    /// namespace (schema documented in `docs/METRICS.md`).
    pub fn report(&self, reg: &mut MetricsRegistry) {
        reg.add("st.ops", self.ops);
        reg.add("st.slow_ops", self.slow_ops);
        reg.add("st.forced_slow_ops", self.forced_slow_ops);
        reg.add("st.committed_segments", self.committed_segments);
        reg.add("st.segment_aborts", self.segment_aborts);
        reg.add("st.free_calls", self.free_calls);
        reg.add("st.scans", self.scans);
        reg.add("st.scan_words", self.scan_words);
        reg.add("st.scan_retries", self.scan_retries);
        reg.add("st.frees_completed", self.frees_completed);
        reg.add("st.survivors", self.survivors);
        reg.add("st.scan_cycles", self.scan_cycles);
        reg.add("st.scan_probe_cycles", self.scan_probe_cycles);
        reg.add("st.threads_inspected", self.threads_inspected);
        self.abort_causes.report(reg, "st");
        reg.record_hist("st.segment_length", &self.seg_lengths);
        reg.record_hist("st.scan_depth", &self.scan_depths);
        reg.record_hist("st.free_latency_cycles", &self.free_latency);
        reg.record_hist("scan.candidate_probe_cycles", &self.candidate_probe_cycles);
    }
}

fn merged_hist(a: &LogHistogram, b: &LogHistogram) -> LogHistogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_guard_division_by_zero() {
        let s = StThreadStats::default();
        assert_eq!(s.avg_segment_length(), 0.0);
        assert_eq!(s.avg_splits_per_op(), 0.0);
        assert_eq!(s.avg_scan_depth(), 0.0);
    }

    #[test]
    fn averages_compute() {
        let s = StThreadStats {
            ops: 2,
            committed_segments: 4,
            sum_segment_lengths: 40,
            sum_splits_per_op: 4,
            scans: 2,
            scan_words: 100,
            ..Default::default()
        };
        assert_eq!(s.avg_segment_length(), 10.0);
        assert_eq!(s.avg_splits_per_op(), 2.0);
        assert_eq!(s.avg_scan_depth(), 50.0);
    }

    #[test]
    fn merged_sums() {
        let a = StThreadStats {
            ops: 1,
            scans: 2,
            ..Default::default()
        };
        let b = StThreadStats {
            ops: 3,
            scan_retries: 1,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.ops, 4);
        assert_eq!(m.scans, 2);
        assert_eq!(m.scan_retries, 1);
    }

    #[test]
    fn merged_combines_causes_and_histograms() {
        use st_obs::AbortCause;
        let mut a = StThreadStats::default();
        a.abort_causes.add(AbortCause::Conflict);
        a.seg_lengths.record(8);
        let mut b = StThreadStats::default();
        b.abort_causes.add(AbortCause::Conflict);
        b.abort_causes.add(AbortCause::Preempted);
        b.seg_lengths.record(32);
        b.free_latency.record(1_000);
        let m = a.merged(&b);
        assert_eq!(m.abort_causes.get(AbortCause::Conflict), 2);
        assert_eq!(m.abort_causes.get(AbortCause::Preempted), 1);
        assert_eq!(m.seg_lengths.count(), 2);
        assert_eq!(m.free_latency.count(), 1);
    }

    #[test]
    fn report_exports_the_full_schema() {
        let mut s = StThreadStats {
            ops: 5,
            scans: 1,
            scan_probe_cycles: 42,
            ..Default::default()
        };
        s.seg_lengths.record(4);
        s.scan_depths.record(64);
        s.free_latency.record(900);
        s.candidate_probe_cycles.record(42);
        let mut reg = MetricsRegistry::new();
        s.report(&mut reg);
        assert_eq!(reg.counter("st.ops"), 5);
        assert_eq!(reg.counter("st.aborts.preempted"), 0);
        assert_eq!(reg.counter("st.scan_probe_cycles"), 42);
        assert_eq!(reg.histogram("st.segment_length").unwrap().count(), 1);
        assert_eq!(reg.histogram("st.scan_depth").unwrap().count(), 1);
        assert_eq!(reg.histogram("st.free_latency_cycles").unwrap().sum(), 900);
        assert_eq!(
            reg.histogram("scan.candidate_probe_cycles").unwrap().sum(),
            42
        );
    }
}
