//! Per-thread StackTrack statistics (Figures 4-5 and the scan table).

use st_machine::Cycles;

/// Counters a [`crate::StThread`] accumulates while executing operations.
#[derive(Debug, Default, Clone)]
pub struct StThreadStats {
    /// Operations completed.
    pub ops: u64,
    /// Operations that ran (at least partly) on the slow path.
    pub slow_ops: u64,
    /// Operations forced onto the slow path at start (Figure 5 mode).
    pub forced_slow_ops: u64,
    /// Segments committed.
    pub committed_segments: u64,
    /// Sum of committed segment lengths, in basic blocks.
    pub sum_segment_lengths: u64,
    /// Sum over operations of segments committed in that operation.
    pub sum_splits_per_op: u64,
    /// Segment aborts observed by the split engine.
    pub segment_aborts: u64,
    /// Calls to `FREE` (retires reaching the free set).
    pub free_calls: u64,
    /// `SCAN_AND_FREE` invocations.
    pub scans: u64,
    /// Words inspected across all scans.
    pub scan_words: u64,
    /// Thread inspections restarted by the split-counter protocol.
    pub scan_retries: u64,
    /// Objects actually freed.
    pub frees_completed: u64,
    /// Candidates kept alive by a found reference (returned to the set).
    pub survivors: u64,
    /// Virtual cycles spent inside scans.
    pub scan_cycles: Cycles,
    /// Thread inspections performed.
    pub threads_inspected: u64,
}

impl StThreadStats {
    /// Average committed segment length, in basic blocks.
    pub fn avg_segment_length(&self) -> f64 {
        ratio(self.sum_segment_lengths, self.committed_segments)
    }

    /// Average committed segments ("splits") per operation.
    pub fn avg_splits_per_op(&self) -> f64 {
        ratio(self.sum_splits_per_op, self.ops)
    }

    /// Average words inspected per scan (the paper's "average stack depth
    /// inspected").
    pub fn avg_scan_depth(&self) -> f64 {
        ratio(self.scan_words, self.scans)
    }

    /// Element-wise sum.
    pub fn merged(&self, o: &StThreadStats) -> StThreadStats {
        StThreadStats {
            ops: self.ops + o.ops,
            slow_ops: self.slow_ops + o.slow_ops,
            forced_slow_ops: self.forced_slow_ops + o.forced_slow_ops,
            committed_segments: self.committed_segments + o.committed_segments,
            sum_segment_lengths: self.sum_segment_lengths + o.sum_segment_lengths,
            sum_splits_per_op: self.sum_splits_per_op + o.sum_splits_per_op,
            segment_aborts: self.segment_aborts + o.segment_aborts,
            free_calls: self.free_calls + o.free_calls,
            scans: self.scans + o.scans,
            scan_words: self.scan_words + o.scan_words,
            scan_retries: self.scan_retries + o.scan_retries,
            frees_completed: self.frees_completed + o.frees_completed,
            survivors: self.survivors + o.survivors,
            scan_cycles: self.scan_cycles + o.scan_cycles,
            threads_inspected: self.threads_inspected + o.threads_inspected,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_guard_division_by_zero() {
        let s = StThreadStats::default();
        assert_eq!(s.avg_segment_length(), 0.0);
        assert_eq!(s.avg_splits_per_op(), 0.0);
        assert_eq!(s.avg_scan_depth(), 0.0);
    }

    #[test]
    fn averages_compute() {
        let s = StThreadStats {
            ops: 2,
            committed_segments: 4,
            sum_segment_lengths: 40,
            sum_splits_per_op: 4,
            scans: 2,
            scan_words: 100,
            ..Default::default()
        };
        assert_eq!(s.avg_segment_length(), 10.0);
        assert_eq!(s.avg_splits_per_op(), 2.0);
        assert_eq!(s.avg_scan_depth(), 50.0);
    }

    #[test]
    fn merged_sums() {
        let a = StThreadStats {
            ops: 1,
            scans: 2,
            ..Default::default()
        };
        let b = StThreadStats {
            ops: 3,
            scan_retries: 1,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.ops, 4);
        assert_eq!(m.scans, 2);
        assert_eq!(m.scan_retries, 1);
    }
}
