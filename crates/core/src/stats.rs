//! Per-thread StackTrack statistics (Figures 4-5 and the scan table).
//!
//! [`StThreadStats`] is built on the `st-obs` primitives: aborts are
//! attributed through a [`CauseCounts`] block and the paper's three skewed
//! distributions (segment lengths, scan depths, retire-to-free latency)
//! are recorded in [`LogHistogram`]s rather than sum-only counters. The
//! whole block reports into a [`MetricsRegistry`] under the `st.`
//! namespace via [`StThreadStats::report`].

use st_machine::Cycles;
use st_obs::{CauseCounts, LogHistogram, MetricId, MetricSchema, MetricsRegistry, ScratchRegistry};
use std::sync::OnceLock;

/// Counters a [`crate::StThread`] accumulates while executing operations.
#[derive(Debug, Default, Clone)]
pub struct StThreadStats {
    /// Operations completed.
    pub ops: u64,
    /// Operations that ran (at least partly) on the slow path.
    pub slow_ops: u64,
    /// Operations forced onto the slow path at start (Figure 5 mode).
    pub forced_slow_ops: u64,
    /// Segments committed.
    pub committed_segments: u64,
    /// Sum of committed segment lengths, in basic blocks.
    pub sum_segment_lengths: u64,
    /// Sum over operations of segments committed in that operation.
    pub sum_splits_per_op: u64,
    /// Segment aborts observed by the split engine.
    pub segment_aborts: u64,
    /// Calls to `FREE` (retires reaching the free set).
    pub free_calls: u64,
    /// `SCAN_AND_FREE` invocations.
    pub scans: u64,
    /// Words inspected across all scans.
    pub scan_words: u64,
    /// Thread inspections restarted by the split-counter protocol.
    pub scan_retries: u64,
    /// Objects actually freed.
    pub frees_completed: u64,
    /// Candidates kept alive by a found reference (returned to the set).
    pub survivors: u64,
    /// Virtual cycles spent inside scans.
    pub scan_cycles: Cycles,
    /// Virtual cycles spent probing scanned words against the candidate
    /// batch (index build + lookups), across all scans.
    pub scan_probe_cycles: Cycles,
    /// Thread inspections performed.
    pub threads_inspected: u64,
    /// Segment aborts attributed by cause (the canonical taxonomy).
    pub abort_causes: CauseCounts,
    /// Distribution of committed segment lengths, in basic blocks.
    pub seg_lengths: LogHistogram,
    /// Distribution of words inspected per completed scan.
    pub scan_depths: LogHistogram,
    /// Distribution of retire-to-free latency, in virtual cycles.
    pub free_latency: LogHistogram,
    /// Distribution of candidate-probe cycles per completed scan (the
    /// `scan.candidate_probe_cycles` metric).
    pub candidate_probe_cycles: LogHistogram,
}

impl StThreadStats {
    /// Average committed segment length, in basic blocks.
    pub fn avg_segment_length(&self) -> f64 {
        ratio(self.sum_segment_lengths, self.committed_segments)
    }

    /// Average committed segments ("splits") per operation.
    pub fn avg_splits_per_op(&self) -> f64 {
        ratio(self.sum_splits_per_op, self.ops)
    }

    /// Average words inspected per scan (the paper's "average stack depth
    /// inspected").
    pub fn avg_scan_depth(&self) -> f64 {
        ratio(self.scan_words, self.scans)
    }

    /// Element-wise sum.
    pub fn merged(&self, o: &StThreadStats) -> StThreadStats {
        StThreadStats {
            ops: self.ops + o.ops,
            slow_ops: self.slow_ops + o.slow_ops,
            forced_slow_ops: self.forced_slow_ops + o.forced_slow_ops,
            committed_segments: self.committed_segments + o.committed_segments,
            sum_segment_lengths: self.sum_segment_lengths + o.sum_segment_lengths,
            sum_splits_per_op: self.sum_splits_per_op + o.sum_splits_per_op,
            segment_aborts: self.segment_aborts + o.segment_aborts,
            free_calls: self.free_calls + o.free_calls,
            scans: self.scans + o.scans,
            scan_words: self.scan_words + o.scan_words,
            scan_retries: self.scan_retries + o.scan_retries,
            frees_completed: self.frees_completed + o.frees_completed,
            survivors: self.survivors + o.survivors,
            scan_cycles: self.scan_cycles + o.scan_cycles,
            scan_probe_cycles: self.scan_probe_cycles + o.scan_probe_cycles,
            threads_inspected: self.threads_inspected + o.threads_inspected,
            abort_causes: self.abort_causes.merged(&o.abort_causes),
            seg_lengths: merged_hist(&self.seg_lengths, &o.seg_lengths),
            scan_depths: merged_hist(&self.scan_depths, &o.scan_depths),
            free_latency: merged_hist(&self.free_latency, &o.free_latency),
            candidate_probe_cycles: merged_hist(
                &self.candidate_probe_cycles,
                &o.candidate_probe_cycles,
            ),
        }
    }

    /// Reports every counter and histogram into `reg` under the `st.`
    /// namespace (schema documented in `docs/METRICS.md`).
    ///
    /// Keys are interned once per process ([`st_schema`]); each call fills
    /// a thread-local flat scratch and merges it in at the end, so the
    /// report path does no string lookups. The key set and JSON output are
    /// identical to direct string-keyed recording.
    pub fn report(&self, reg: &mut MetricsRegistry) {
        let ids = st_schema();
        let mut scratch = ScratchRegistry::for_schema(&ids.schema);
        scratch.add(ids.ops, self.ops);
        scratch.add(ids.slow_ops, self.slow_ops);
        scratch.add(ids.forced_slow_ops, self.forced_slow_ops);
        scratch.add(ids.committed_segments, self.committed_segments);
        scratch.add(ids.segment_aborts, self.segment_aborts);
        scratch.add(ids.free_calls, self.free_calls);
        scratch.add(ids.scans, self.scans);
        scratch.add(ids.scan_words, self.scan_words);
        scratch.add(ids.scan_retries, self.scan_retries);
        scratch.add(ids.frees_completed, self.frees_completed);
        scratch.add(ids.survivors, self.survivors);
        scratch.add(ids.scan_cycles, self.scan_cycles);
        scratch.add(ids.scan_probe_cycles, self.scan_probe_cycles);
        scratch.add(ids.threads_inspected, self.threads_inspected);
        self.abort_causes.report_interned(&mut scratch, &ids.aborts);
        scratch.record_hist(ids.segment_length, &self.seg_lengths);
        scratch.record_hist(ids.scan_depth, &self.scan_depths);
        scratch.record_hist(ids.free_latency_cycles, &self.free_latency);
        scratch.record_hist(ids.candidate_probe_cycles, &self.candidate_probe_cycles);
        scratch.merge_into(&ids.schema, reg);
    }
}

/// The interned `st.` metric schema: every key name is resolved to a
/// [`MetricId`] exactly once per process, at first report.
struct StSchemaIds {
    schema: MetricSchema,
    ops: MetricId,
    slow_ops: MetricId,
    forced_slow_ops: MetricId,
    committed_segments: MetricId,
    segment_aborts: MetricId,
    free_calls: MetricId,
    scans: MetricId,
    scan_words: MetricId,
    scan_retries: MetricId,
    frees_completed: MetricId,
    survivors: MetricId,
    scan_cycles: MetricId,
    scan_probe_cycles: MetricId,
    threads_inspected: MetricId,
    aborts: [MetricId; 5],
    segment_length: MetricId,
    scan_depth: MetricId,
    free_latency_cycles: MetricId,
    candidate_probe_cycles: MetricId,
}

fn st_schema() -> &'static StSchemaIds {
    static SCHEMA: OnceLock<StSchemaIds> = OnceLock::new();
    SCHEMA.get_or_init(|| {
        let mut s = MetricSchema::new();
        StSchemaIds {
            ops: s.intern("st.ops"),
            slow_ops: s.intern("st.slow_ops"),
            forced_slow_ops: s.intern("st.forced_slow_ops"),
            committed_segments: s.intern("st.committed_segments"),
            segment_aborts: s.intern("st.segment_aborts"),
            free_calls: s.intern("st.free_calls"),
            scans: s.intern("st.scans"),
            scan_words: s.intern("st.scan_words"),
            scan_retries: s.intern("st.scan_retries"),
            frees_completed: s.intern("st.frees_completed"),
            survivors: s.intern("st.survivors"),
            scan_cycles: s.intern("st.scan_cycles"),
            scan_probe_cycles: s.intern("st.scan_probe_cycles"),
            threads_inspected: s.intern("st.threads_inspected"),
            aborts: CauseCounts::intern_keys(&mut s, "st"),
            segment_length: s.intern("st.segment_length"),
            scan_depth: s.intern("st.scan_depth"),
            free_latency_cycles: s.intern("st.free_latency_cycles"),
            candidate_probe_cycles: s.intern("scan.candidate_probe_cycles"),
            schema: s,
        }
    })
}

fn merged_hist(a: &LogHistogram, b: &LogHistogram) -> LogHistogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_guard_division_by_zero() {
        let s = StThreadStats::default();
        assert_eq!(s.avg_segment_length(), 0.0);
        assert_eq!(s.avg_splits_per_op(), 0.0);
        assert_eq!(s.avg_scan_depth(), 0.0);
    }

    #[test]
    fn averages_compute() {
        let s = StThreadStats {
            ops: 2,
            committed_segments: 4,
            sum_segment_lengths: 40,
            sum_splits_per_op: 4,
            scans: 2,
            scan_words: 100,
            ..Default::default()
        };
        assert_eq!(s.avg_segment_length(), 10.0);
        assert_eq!(s.avg_splits_per_op(), 2.0);
        assert_eq!(s.avg_scan_depth(), 50.0);
    }

    #[test]
    fn merged_sums() {
        let a = StThreadStats {
            ops: 1,
            scans: 2,
            ..Default::default()
        };
        let b = StThreadStats {
            ops: 3,
            scan_retries: 1,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.ops, 4);
        assert_eq!(m.scans, 2);
        assert_eq!(m.scan_retries, 1);
    }

    #[test]
    fn merged_combines_causes_and_histograms() {
        use st_obs::AbortCause;
        let mut a = StThreadStats::default();
        a.abort_causes.add(AbortCause::Conflict);
        a.seg_lengths.record(8);
        let mut b = StThreadStats::default();
        b.abort_causes.add(AbortCause::Conflict);
        b.abort_causes.add(AbortCause::Preempted);
        b.seg_lengths.record(32);
        b.free_latency.record(1_000);
        let m = a.merged(&b);
        assert_eq!(m.abort_causes.get(AbortCause::Conflict), 2);
        assert_eq!(m.abort_causes.get(AbortCause::Preempted), 1);
        assert_eq!(m.seg_lengths.count(), 2);
        assert_eq!(m.free_latency.count(), 1);
    }

    #[test]
    fn report_exports_the_full_schema() {
        let mut s = StThreadStats {
            ops: 5,
            scans: 1,
            scan_probe_cycles: 42,
            ..Default::default()
        };
        s.seg_lengths.record(4);
        s.scan_depths.record(64);
        s.free_latency.record(900);
        s.candidate_probe_cycles.record(42);
        let mut reg = MetricsRegistry::new();
        s.report(&mut reg);
        assert_eq!(reg.counter("st.ops"), 5);
        assert_eq!(reg.counter("st.aborts.preempted"), 0);
        assert_eq!(reg.counter("st.scan_probe_cycles"), 42);
        assert_eq!(reg.histogram("st.segment_length").unwrap().count(), 1);
        assert_eq!(reg.histogram("st.scan_depth").unwrap().count(), 1);
        assert_eq!(reg.histogram("st.free_latency_cycles").unwrap().sum(), 900);
        assert_eq!(
            reg.histogram("scan.candidate_probe_cycles").unwrap().sum(),
            42
        );
    }
}
