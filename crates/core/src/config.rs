//! StackTrack configuration knobs.

/// How `SCAN_AND_FREE` inspects thread contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Algorithm 1 as printed: for every free candidate, walk every
    /// thread's stack and registers.
    Linear,
    /// The section 5.2 optimization: walk every thread once, hashing all
    /// scanned words, then probe each candidate against the hash set.
    Hashed,
    /// The default: walk every thread once and binary-search each scanned
    /// word against a sorted slice of the candidate batch, marking hits in
    /// a bitmap. Same single-pass shape as [`ScanMode::Hashed`] but the
    /// per-word probe is `O(log max_free)` compares over a contiguous
    /// slice instead of a hash-table lookup, and the batch index is
    /// rebuilt in place from reused buffers (no per-scan allocation).
    Batched,
}

/// Tunable parameters of the StackTrack runtime.
///
/// Defaults follow the paper: initial split length 50 basic blocks,
/// limits adjusted by one after 5 consecutive aborts/commits, scans
/// amortized over batches of frees ("the cost of the global scan becomes
/// negligible ... when it executes once per every 10 free memory calls").
#[derive(Debug, Clone)]
pub struct StConfig {
    /// Initial segment length, in basic blocks (paper: 50).
    pub initial_split_length: u32,
    /// Lower bound on segment length.
    pub min_split_length: u32,
    /// Upper bound on segment length.
    pub max_split_length: u32,
    /// Consecutive aborts of one segment before its limit shrinks by 1.
    pub abort_streak: u32,
    /// Consecutive commits of one segment before its limit grows by 1.
    pub commit_streak: u32,
    /// Free-set size that triggers `SCAN_AND_FREE` (paper's `max_free`).
    pub max_free: usize,
    /// Consecutive failures of a length-1 segment before the operation
    /// falls back to the software slow path.
    pub slow_fail_threshold: u32,
    /// Probability that an operation is forced onto the slow path at start
    /// (the Figure 5 experiment; 0.0 in normal operation).
    pub forced_slow_prob: f64,
    /// Scan strategy.
    pub scan_mode: ScanMode,
    /// Resolve interior pointers during scans via heap range queries
    /// (section 5.5). Costs a range query per scanned word.
    pub interior_pointers: bool,
    /// Expose the register file at segment commits. Disabling this is an
    /// ablation; safety is carried by the shadow stack slots.
    pub expose_registers: bool,
    /// Words inspected per scheduler step during a scan (scan
    /// interruptibility granularity).
    pub scan_chunk_words: u64,
    /// **Mutation knob for the model checker — never enable in real runs.**
    /// Skips the Algorithm 1 lines 23-29 `splits`/`oper_counter` re-read at
    /// the end of an inspection, accepting torn snapshots. `st-check`'s
    /// mutation tests flip this to prove the use-after-free oracle detects
    /// the resulting unsound frees.
    pub mutation_skip_splits_recheck: bool,
    /// **Mutation knob for the audit harness — never enable in real
    /// runs.** Swallows the first scan verdict that would free a
    /// candidate (one-shot per runtime): the block is neither freed nor
    /// kept as a survivor, so the heap-ledger oracle must report it as a
    /// leak at teardown.
    pub mutation_skip_one_free: bool,
}

impl Default for StConfig {
    fn default() -> Self {
        Self {
            initial_split_length: 50,
            min_split_length: 1,
            max_split_length: 200,
            abort_streak: 5,
            commit_streak: 5,
            max_free: 10,
            slow_fail_threshold: 3,
            forced_slow_prob: 0.0,
            scan_mode: ScanMode::Batched,
            interior_pointers: false,
            expose_registers: true,
            scan_chunk_words: 24,
            mutation_skip_splits_recheck: false,
            mutation_skip_one_free: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = StConfig::default();
        assert_eq!(c.initial_split_length, 50);
        assert_eq!(c.abort_streak, 5);
        assert_eq!(c.commit_streak, 5);
        assert_eq!(c.min_split_length, 1);
        assert_eq!(c.forced_slow_prob, 0.0);
    }
}
