//! Shared-memory layout of per-thread contexts.
//!
//! Each registered thread owns a context block in the simulated heap — the
//! analog of the paper's `ctx` structure plus the thread's scannable state:
//! exposed registers, shadow stack frame, staged retires, and the
//! slow-path reference set. Reclaimers find contexts through the global
//! *activity array* (one word per thread slot holding the context address).
//!
//! All words a scanner reads live here; all words only the owner touches
//! are Rust-side mirrors in [`crate::thread::StThread`].

/// Exposed register file size, in words.
pub const REG_SLOTS: usize = 8;

/// Shadow stack frame capacity, in words (the deepest operation in this
/// repository — the skip list — uses two pointer arrays of
/// `MAX_LEVEL` each plus scratch).
pub const STACK_SLOTS: usize = 48;

/// Staged-retire buffer capacity (retires force a segment commit, so at
/// most a handful accumulate per segment).
pub const STAGED_CAP: usize = 8;

/// Slow-path reference set capacity, in words. The slow path records every
/// *distinct* value it reads during one operation (it is a set, as in the
/// paper's Algorithm 5); sized for a full walk of the longest benchmark
/// structure.
pub const REFSET_CAP: usize = 16384;

/// Offset of the "inside an operation" flag.
pub const OFF_ACTIVE: u64 = 0;
/// Offset of the current operation id.
pub const OFF_OP_ID: u64 = 1;
/// Offset of the completed-operations counter (Algorithm 1's
/// `oper_counter`).
pub const OFF_OPER_COUNTER: u64 = 2;
/// Offset of the committed-segments counter (Algorithm 1's `splits`).
pub const OFF_SPLITS: u64 = 3;
/// Offset of the current shadow stack depth, in words.
pub const OFF_STACK_DEPTH: u64 = 4;
/// Offset of the "on the slow path" flag.
pub const OFF_SLOW_FLAG: u64 = 5;
/// Offset of the slow-path reference set length.
pub const OFF_REFSET_COUNT: u64 = 6;
/// Offset of the staged-retire count.
pub const OFF_STAGED_COUNT: u64 = 7;
/// Offset of the exposed register file.
pub const OFF_REGISTERS: u64 = 8;
/// Offset of the shadow stack frame.
pub const OFF_STACK: u64 = OFF_REGISTERS + REG_SLOTS as u64;
/// Offset of the staged-retire buffer.
pub const OFF_STAGED: u64 = OFF_STACK + STACK_SLOTS as u64;
/// Offset of the slow-path reference set.
pub const OFF_REFSET: u64 = OFF_STAGED + STAGED_CAP as u64;
/// Total context block size, in words.
pub const CTX_WORDS: usize = OFF_REFSET as usize + REFSET_CAP;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        assert_eq!(OFF_REGISTERS, 8);
        assert_eq!(OFF_STACK, OFF_REGISTERS + REG_SLOTS as u64);
        assert_eq!(OFF_STAGED, OFF_STACK + STACK_SLOTS as u64);
        assert_eq!(OFF_REFSET, OFF_STAGED + STAGED_CAP as u64);
        assert_eq!(CTX_WORDS as u64, OFF_REFSET + REFSET_CAP as u64);
    }

    #[test]
    fn header_fits_before_registers() {
        for off in [
            OFF_ACTIVE,
            OFF_OP_ID,
            OFF_OPER_COUNTER,
            OFF_SPLITS,
            OFF_STACK_DEPTH,
            OFF_SLOW_FLAG,
            OFF_REFSET_COUNT,
            OFF_STAGED_COUNT,
        ] {
            assert!(off < OFF_REGISTERS);
        }
    }
}
