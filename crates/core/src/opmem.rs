//! The scheme-neutral instruction set for operation bodies.
//!
//! Data structures in this repository are written once, as *basic-block
//! step closures* over [`OpMem`], and run unchanged under every
//! reclamation scheme (StackTrack fast path, StackTrack slow path, epoch,
//! hazard pointers, drop-the-anchor, reference counting, or no reclamation
//! at all). This mirrors the paper's claim that StackTrack is applied by
//! the compiler to unmodified data-structure code: here, `OpMem` is the
//! surface the "compiler" (the executor) instruments.
//!
//! # Contract for operation bodies
//!
//! - One closure invocation is **one basic block**: a bounded piece of
//!   straight-line work. The executor runs the split checkpoint between
//!   invocations.
//! - Any pointer that must remain live across a checkpoint **must** be
//!   stored in a shadow stack slot with [`OpMem::set_local`] in the same
//!   block that obtained it. (In C this is automatic — locals live in the
//!   scanned stack; in Rust the slot store is the explicit equivalent.)
//! - Bodies must be **re-executable from committed state**: a segment abort
//!   rolls the shadow slots back and the closure is invoked again. Reads of
//!   locals at block entry, via [`OpMem::get_local`], make this automatic.
//! - `Err(Abort)` simply propagates; the executor handles retry. Bodies
//!   never catch aborts.

use st_machine::Cpu;
use st_simheap::{Addr, Word};
use st_simhtm::Abort;

/// Outcome of one basic block of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The operation continues with another block.
    Continue,
    /// The operation finished with this result word.
    Done(Word),
}

/// One basic block of an operation body.
///
/// The executor invokes the body repeatedly until it returns
/// [`Step::Done`]; each invocation is one checkpointed basic block.
pub type OpBody<'a> = dyn FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + 'a;

/// Memory operations available to an operation body.
///
/// Implementations: the StackTrack fast path (transactional), the
/// StackTrack slow path (reference sets), and each baseline scheme.
pub trait OpMem {
    /// Loads a data word from `addr + off`.
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort>;

    /// Loads a **pointer** word from `addr + off`.
    ///
    /// Schemes that must announce references before dereferencing (hazard
    /// pointers, drop-the-anchor) publish the loaded value through `guard`
    /// — a small per-operation guard-slot index — and perform their
    /// validate/retry protocol internally. Other schemes treat this as
    /// [`OpMem::load`] (StackTrack additionally records the value in the
    /// thread's register file, exposed at the next commit).
    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        guard: usize,
    ) -> Result<Word, Abort>;

    /// Stores `value` to `addr + off`.
    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort>;

    /// Compare-and-swap on `addr + off`: `Ok(Ok(prev))` on success,
    /// `Ok(Err(actual))` on value mismatch, `Err` on abort.
    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort>;

    /// Allocates a zeroed node of `words` words.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted (benchmarks size the heap
    /// for their workload; exhaustion is a configuration error).
    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr;

    /// Hands an **unlinked** node to the reclamation scheme.
    ///
    /// Must be called in the same basic block as the successful unlink
    /// (StackTrack commits the enclosing segment before running the
    /// non-transactional `FREE`, and the block may be re-executed if that
    /// commit fails).
    ///
    /// **Trait-internal.** This is the entry point the scheme executors
    /// implement; structures never call it directly. Nothing at this level
    /// enforces that the caller actually unlinked `addr`, or that it
    /// retires it exactly once — that proof obligation lives in the typed
    /// layer: structures reach retirement through
    /// `st_reclaim::mem::Unlinked`, whose move semantics make the unlink
    /// proof and the at-most-once contract type-checked (`st_reclaim` is
    /// the reclaim crate; see its `mem` module and `docs/MEMORY_API.md`).
    /// The only callers outside scheme implementations are the typed
    /// wrappers in `st_reclaim::mem` and the substrate's own tests.
    fn retire_unlinked(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort>;

    /// Returns a node that was **never published** (no other thread can
    /// hold a reference) straight to the allocator, bypassing the
    /// scheme's deferral pipeline.
    ///
    /// The default conservatively routes through
    /// [`OpMem::retire_unlinked`]: a spurious trip through the reclamation
    /// pipeline is always safe, and it keeps every scheme's retire/free
    /// accounting — and therefore the committed benchmark figures —
    /// unchanged. Schemes that track per-segment allocations (StackTrack's
    /// aborted-segment rollback already uses the heap-level shortcut
    /// internally) may override this with a direct `Live -> Freed`
    /// transition later. This is the drop path of
    /// `st_reclaim::mem::Owned`, the typed API's unpublished allocation
    /// token (`st_reclaim` is the reclaim crate).
    fn free_unpublished(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        self.retire_unlinked(cpu, addr)
    }

    /// Requests a segment boundary at the end of the current basic block.
    ///
    /// This is the mechanism the paper wraps around instructions the HTM
    /// cannot execute (section 5.4): "committing the current hardware
    /// transaction, executing the unsupported instruction, and starting a
    /// new hardware transaction". Code that must perform a
    /// non-speculative side effect calls `force_split`, returns
    /// [`Step::Continue`], performs the effect in the next block (which
    /// starts a fresh segment), and calls `force_split` again before
    /// resuming speculation-sensitive work. No-op outside the StackTrack
    /// fast path.
    fn force_split(&mut self, _cpu: &mut Cpu) {}

    /// Opens a programmer-defined transactional region (paper section 5.5).
    ///
    /// Between `user_tx_begin` and [`OpMem::user_tx_end`], the StackTrack
    /// split engine never commits the enclosing segment, so the region's
    /// accesses stay atomic: "the split procedure adapts to this case by
    /// ensuring that a split is never performed during a user-defined
    /// transaction". A segment abort rolls the whole region back and the
    /// body re-executes it from committed state. Schemes without
    /// transactions treat the region as a hint and ignore it — the
    /// programmer must not rely on atomicity there, exactly as the paper's
    /// best-effort contract demands a non-transactional backup.
    fn user_tx_begin(&mut self, _cpu: &mut Cpu) {}

    /// Closes a programmer-defined transactional region, exposing the
    /// register file ("the split procedure does have to insert the
    /// necessary register expose operations at the end of the user-defined
    /// transaction") and re-enabling splits.
    fn user_tx_end(&mut self, _cpu: &mut Cpu) -> Result<(), Abort> {
        Ok(())
    }

    /// Re-announces an **already-protected** pointer in guard slot `guard`.
    ///
    /// Traversals that keep several pointers protected at once (list
    /// `prev`/`cur`, the skip list's per-level predecessors) rotate values
    /// between guard slots as they advance; because the value is still
    /// covered by its previous guard while the new announcement is made,
    /// no fence or revalidation is needed (stores retire in order under
    /// TSO). Schemes without per-reference announcements ignore this.
    ///
    /// **Trait-internal.** This is the entry point the scheme executors
    /// implement; structures never call it directly. Raw guard indices
    /// made every protection point a hand-audited convention
    /// (`G_PREV`/`G_CUR` constants rotated by hand), so structures
    /// announce protections through typed guard handles instead
    /// (`st_reclaim::mem::Guard::shield`, where `st_reclaim` is the
    /// reclaim crate), which tie each protected borrow to the guard's
    /// borrow and make slot collisions unrepresentable. The only callers
    /// outside scheme implementations are the typed wrappers in
    /// `st_reclaim::mem` and the substrate's own tests.
    fn protect_slot(&mut self, _cpu: &mut Cpu, _guard: usize, _value: Word) {}

    /// Reads shadow stack slot `slot`.
    fn get_local(&mut self, cpu: &mut Cpu, slot: usize) -> Word;

    /// Writes shadow stack slot `slot`.
    fn set_local(&mut self, cpu: &mut Cpu, slot: usize, value: Word);
}
