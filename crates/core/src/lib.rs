//! StackTrack: automated transactional concurrent memory reclamation.
//!
//! This crate is the reproduction's core contribution — the scheme of
//! *StackTrack: An Automated Transactional Approach to Concurrent Memory
//! Reclamation* (Alistarh, Eugster, Herlihy, Matveev, Shavit; EuroSys 2014):
//!
//! - **Split-transactional execution** ([`thread::StThread`]): every data
//!   structure operation runs as a chain of best-effort hardware
//!   transactions ("segments"), with a checkpoint per basic block and a
//!   dynamic per-(operation, segment) length predictor
//!   ([`predictor::SplitPredictor`], paper section 5.3).
//! - **Stack/register-scanning reclamation** ([`free`]): `FREE` batches
//!   retired nodes; `SCAN_AND_FREE` inspects every registered thread's
//!   exposed shadow stack and register file for references, with the
//!   split-counter consistency protocol of Algorithm 1 (section 5.2) and
//!   the hashed-scan optimization.
//! - **Non-blocking software slow path** ([`thread`], slow mode): an
//!   "everything is hazardous" reference-set protocol (Algorithm 5) entered
//!   when a length-1 segment keeps aborting, with a global slow-path
//!   counter that scanners consult (section 5.4).
//! - **Interior-pointer resolution** via heap range queries (section 5.5).
//!
//! # The instrumentation contract
//!
//! The paper's compiler pass injects a split checkpoint per basic block and
//! keeps operation state in stack slots and registers, which the reclaimer
//! scans. Rust cannot scan native stacks, so operations here are written as
//! *basic-block step closures* against the [`opmem::OpMem`] interface: one
//! closure invocation is one basic block (one checkpoint), and every
//! pointer that must survive a checkpoint lives in a declared **shadow
//! stack slot** (`set_local`), which the framework exposes atomically at
//! segment commit — exactly when the paper's stack writes and
//! `EXPOSE_REGISTERS` become visible. See `DESIGN.md` for the fidelity
//! argument.
//!
//! # Examples
//!
//! ```
//! use stacktrack::{Step, StConfig, StRuntime};
//! use st_simhtm::{HtmConfig, HtmEngine};
//! use st_simheap::{Heap, HeapConfig};
//! use std::sync::Arc;
//!
//! let heap = Arc::new(Heap::new(HeapConfig {
//!     capacity_words: 1 << 18,
//!     ..HeapConfig::small()
//! }));
//! let engine = Arc::new(HtmEngine::new(heap, HtmConfig::default(), 1));
//! let rt = StRuntime::new(engine, StConfig::default(), 1);
//! let mut th = rt.register_thread(0);
//! let mut cpu = rt.test_cpu(0);
//!
//! // A one-block operation: allocate a node, publish a value, retire it.
//! let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
//!     let node = m.alloc(cpu, 2);
//!     m.store(cpu, node, 0, 42)?;
//!     m.set_local(cpu, 0, node.raw());
//!     m.retire_unlinked(cpu, node)?;
//!     Ok(Step::Done(1))
//! });
//! assert_eq!(v, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod free;
pub mod layout;
pub mod opmem;
pub mod predictor;
pub mod runtime;
pub mod stats;
pub mod thread;

pub use config::{ScanMode, StConfig};
pub use opmem::{OpBody, OpMem, Step};
pub use runtime::StRuntime;
pub use stats::StThreadStats;
pub use thread::StThread;
