//! The per-thread StackTrack executor: split engine, slow path, and
//! the `FREE` entry point.

use crate::free::{Retired, ScanBuffers, ScanJob};
use crate::layout::{
    OFF_ACTIVE, OFF_OPER_COUNTER, OFF_OP_ID, OFF_REFSET, OFF_REFSET_COUNT, OFF_REGISTERS,
    OFF_SLOW_FLAG, OFF_SPLITS, OFF_STACK, OFF_STACK_DEPTH, OFF_STAGED, OFF_STAGED_COUNT,
    REFSET_CAP, REG_SLOTS, STACK_SLOTS, STAGED_CAP,
};
use crate::opmem::{OpBody, OpMem, Step};
use crate::predictor::SplitPredictor;
use crate::runtime::StRuntime;
use crate::stats::StThreadStats;
use st_machine::Cpu;
use st_obs::AbortCause;
use st_simheap::{Addr, Word};
use st_simhtm::{Abort, Tx};
use std::sync::Arc;

/// Executor mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// No operation in flight.
    Idle,
    /// Inside an operation, on the transactional fast path.
    Fast,
    /// Inside an operation, on the software slow path (Algorithm 5).
    Slow,
    /// Running a `SCAN_AND_FREE` job; resume `.0` afterwards.
    Reclaim(Resume),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resume {
    Idle,
    Fast,
    Slow,
}

/// A registered StackTrack thread.
///
/// Owns the thread's context block, split predictor, free set, and the
/// Rust-side mirrors of the shadow stack and register file. Operations are
/// driven one basic block at a time with [`StThread::step_op`] (the
/// discrete-event simulator's granularity) or to completion with
/// [`StThread::run_op`].
#[derive(Debug)]
pub struct StThread {
    rt: Arc<StRuntime>,
    thread_id: usize,
    ctx: Addr,
    predictor: SplitPredictor,
    tx: Option<Tx>,
    mode: Mode,
    op_id: u32,
    slots_used: usize,
    steps_in_segment: u32,
    segment_limit: u32,
    split_idx: u32,
    oper_counter: Word,
    locals: [Word; STACK_SLOTS],
    dirty: u64,
    regs: [Word; REG_SLOTS],
    reg_cursor: usize,
    refset_count: u64,
    refset_mirror: std::collections::HashMap<Word, u32>,
    staged: Vec<Addr>,
    seg_allocs: Vec<Addr>,
    free_set: Vec<Retired>,
    force_commit: bool,
    user_region: bool,
    fails_at_one: u32,
    op_used_slow: bool,
    /// `cpu.counters.context_switches` at `SPLIT_START`; a change while the
    /// segment is live means the scheduler preempted us mid-transaction.
    seg_switches: u64,
    job: Option<ScanJob>,
    /// Scan scratch recycled across jobs (free-set storage, the sorted
    /// candidate index, hit flags, hash table): steady-state reclamation
    /// allocates nothing.
    scan_bufs: ScanBuffers,
    stats: StThreadStats,
}

impl StThread {
    pub(crate) fn new(rt: Arc<StRuntime>, thread_id: usize, ctx: Addr) -> Self {
        let c = &rt.config;
        let predictor = SplitPredictor::new(
            c.initial_split_length,
            c.min_split_length,
            c.max_split_length,
            c.abort_streak,
            c.commit_streak,
        );
        Self {
            rt,
            thread_id,
            ctx,
            predictor,
            tx: None,
            mode: Mode::Idle,
            op_id: 0,
            slots_used: 0,
            steps_in_segment: 0,
            segment_limit: 0,
            split_idx: 0,
            oper_counter: 0,
            locals: [0; STACK_SLOTS],
            dirty: 0,
            regs: [0; REG_SLOTS],
            reg_cursor: 0,
            refset_count: 0,
            refset_mirror: std::collections::HashMap::new(),
            staged: Vec::new(),
            seg_allocs: Vec::new(),
            free_set: Vec::new(),
            force_commit: false,
            user_region: false,
            fails_at_one: 0,
            op_used_slow: false,
            seg_switches: 0,
            job: None,
            scan_bufs: ScanBuffers::default(),
            stats: StThreadStats::default(),
        }
    }

    /// The thread's context block address (the scanners' view of it).
    pub fn ctx_addr(&self) -> Addr {
        self.ctx
    }

    /// This thread's slot in the activity array.
    pub fn thread_id(&self) -> usize {
        self.thread_id
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StThreadStats {
        &self.stats
    }

    /// Zeroes the statistics, keeping predictor and reclamation state
    /// (benchmark warm-up support: measure a converged predictor).
    pub fn reset_stats(&mut self) {
        self.stats = StThreadStats::default();
    }

    /// Nodes retired but not yet proven unreferenced.
    pub fn free_set_len(&self) -> usize {
        self.free_set.len()
    }

    /// Whether an operation is in flight.
    pub fn op_active(&self) -> bool {
        !matches!(self.mode, Mode::Idle | Mode::Reclaim(Resume::Idle))
    }

    /// Whether a scan must be drained before the next operation.
    pub fn idle_work_pending(&self) -> bool {
        matches!(self.mode, Mode::Reclaim(Resume::Idle))
    }

    /// Unregisters the thread from the activity array.
    pub fn deregister(self) {
        self.rt.deregister(self.thread_id);
    }

    // ------------------------------------------------------------------
    // Operation lifecycle.
    // ------------------------------------------------------------------

    /// Starts an operation (`SPLIT_INIT` + first `SPLIT_START`).
    ///
    /// `op_id` identifies the operation kind for the split predictor;
    /// `slots` is the shadow stack frame size this operation uses.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already active, a scan is pending, or
    /// `slots > STACK_SLOTS`.
    pub fn begin_op(&mut self, cpu: &mut Cpu, op_id: u32, slots: usize) {
        assert!(
            matches!(self.mode, Mode::Idle),
            "begin_op while busy (mode {:?})",
            self.mode
        );
        assert!(slots <= STACK_SLOTS, "operation needs too many slots");
        let heap = self.rt.heap().clone();
        self.op_id = op_id;
        self.slots_used = slots;
        self.split_idx = 0;
        self.dirty = 0;
        self.locals[..slots].fill(0);
        self.reg_cursor = 0;
        self.force_commit = false;
        self.user_region = false;
        self.fails_at_one = 0;
        self.op_used_slow = false;
        self.staged.clear();
        self.seg_allocs.clear();

        // SPLIT_INIT: publish frame shape, reset the splits counter, fence.
        heap.store(cpu, self.ctx, OFF_OP_ID, u64::from(op_id));
        heap.store(cpu, self.ctx, OFF_STACK_DEPTH, slots as u64);
        // Clearing the shadow frame is a simulation artifact (the paper's
        // stack frame simply *exists*; stale sibling-frame values are not
        // possible there), so it is untimed.
        for i in 0..slots as u64 {
            heap.poke(self.ctx, OFF_STACK + i, 0);
        }
        heap.store(cpu, self.ctx, OFF_SPLITS, 0);
        heap.store(cpu, self.ctx, OFF_ACTIVE, 1);
        heap.fence(cpu);

        let forced = self.rt.config.forced_slow_prob > 0.0
            && cpu.rng.chance(self.rt.config.forced_slow_prob);
        if forced {
            self.stats.forced_slow_ops += 1;
            self.enter_slow(cpu);
        } else {
            self.mode = Mode::Fast;
            self.split_start(cpu);
        }
    }

    /// Executes one basic block of the operation (one checkpoint).
    ///
    /// Returns `Some(result)` when the operation completes (its final
    /// segment committed, or its slow path finished).
    pub fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        match self.mode {
            Mode::Idle => panic!("step_op without an active operation"),
            Mode::Reclaim(_) => {
                self.step_reclaim(cpu);
                None
            }
            Mode::Fast => self.step_fast(cpu, body),
            Mode::Slow => self.step_slow(cpu, body),
        }
    }

    /// Advances a pending scan while no operation is active.
    pub fn step_idle(&mut self, cpu: &mut Cpu) {
        assert!(
            self.idle_work_pending(),
            "step_idle without pending idle work"
        );
        self.step_reclaim(cpu);
    }

    /// Runs a whole operation to completion (tests, examples, and
    /// non-simulated usage).
    pub fn run_op(
        &mut self,
        cpu: &mut Cpu,
        op_id: u32,
        slots: usize,
        body: &mut (dyn FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + '_),
    ) -> Word {
        while self.idle_work_pending() {
            self.step_idle(cpu);
        }
        self.begin_op(cpu, op_id, slots);
        loop {
            if let Some(v) = self.step_op(cpu, body) {
                return v;
            }
        }
    }

    /// Abandons an in-flight operation without completing it (simulation
    /// deadline / teardown support). The open segment transaction is
    /// aborted and its speculative state rolled back, segment-local
    /// allocations are returned to the heap, the slow path (if taken) is
    /// exited so `slow_count` stays balanced, and the shadow frame is
    /// deactivated so scanners stop considering it. A scan already in
    /// flight keeps its job and resumes as idle work. No-op when the
    /// thread has no operation active.
    ///
    /// The abandoned operation is *not* counted in [`StThreadStats::ops`];
    /// it never completed.
    pub fn abandon_op(&mut self, cpu: &mut Cpu) {
        match self.mode {
            Mode::Idle | Mode::Reclaim(Resume::Idle) => return,
            Mode::Fast => {
                let engine = self.rt.engine.clone();
                let tx = self.tx.as_mut().expect("fast path without a transaction");
                engine.tx_abort(cpu, tx);
                // Nodes allocated in the aborted segment were never
                // published; return them to the heap.
                let heap = self.rt.heap().clone();
                for a in std::mem::take(&mut self.seg_allocs) {
                    heap.free_unpublished(cpu, a);
                }
                self.staged.clear();
            }
            Mode::Reclaim(Resume::Fast) => {
                // Between segments: the previous segment committed (and
                // drained its staged retires) before the scan started, so
                // there is no speculative state to roll back.
            }
            Mode::Slow | Mode::Reclaim(Resume::Slow) => self.slow_commit(cpu),
        }
        self.force_commit = false;
        self.user_region = false;
        let heap = self.rt.heap().clone();
        heap.store(cpu, self.ctx, OFF_ACTIVE, 0);
        heap.fence(cpu);
        self.mode = if self.job.is_some() {
            Mode::Reclaim(Resume::Idle)
        } else {
            Mode::Idle
        };
    }

    /// Forces a full scan of the free set, draining pending reclaim work
    /// (teardown / leak-accounting support). Survivors remain in the set.
    ///
    /// # Panics
    ///
    /// Panics if an operation is active.
    pub fn force_full_scan(&mut self, cpu: &mut Cpu) {
        assert!(!self.op_active(), "force_full_scan during an operation");
        while self.idle_work_pending() {
            self.step_idle(cpu);
        }
        if self.free_set.is_empty() {
            return;
        }
        self.start_scan(cpu);
        self.mode = Mode::Reclaim(Resume::Idle);
        while self.idle_work_pending() {
            self.step_idle(cpu);
        }
    }

    // ------------------------------------------------------------------
    // Fast path: the split engine.
    // ------------------------------------------------------------------

    /// `SPLIT_START`: opens the next segment transaction.
    fn split_start(&mut self, cpu: &mut Cpu) {
        self.segment_limit = self
            .predictor
            .limit(self.op_id as usize, self.split_idx as usize);
        self.steps_in_segment = 0;
        self.seg_switches = cpu.counters.context_switches;
        match &mut self.tx {
            Some(tx) => self.rt.engine.begin_reuse(cpu, tx),
            None => self.tx = Some(self.rt.engine.begin(cpu)),
        }
    }

    fn step_fast(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        // A context switch between checkpoints aborts the live segment:
        // real HTM loses its speculative state on any preemption. Detected
        // here (the first step after being rescheduled) and attributed as
        // `AbortCause::Preempted` rather than a data conflict.
        if cpu.counters.context_switches != self.seg_switches {
            let engine = self.rt.engine.clone();
            let tx = self.tx.as_mut().expect("fast path without a transaction");
            engine.tx_abort_preempted(cpu, tx);
            self.on_segment_abort(cpu, AbortCause::Preempted);
            return None;
        }
        let result = body(self, cpu);
        // SPLIT_CHECKPOINT: count the basic block.
        cpu.charge(cpu.costs.local_op);
        self.steps_in_segment += 1;

        match result {
            Err(abort) => {
                self.on_segment_abort(cpu, abort.code().cause());
                None
            }
            Ok(Step::Continue) => {
                // A split is never performed inside a programmer-defined
                // transactional region (paper section 5.5).
                if !self.user_region
                    && (self.force_commit || self.steps_in_segment >= self.segment_limit)
                {
                    self.force_commit = false;
                    match self.split_commit(cpu, false) {
                        Ok(()) => {
                            if self.job.is_some() {
                                self.mode = Mode::Reclaim(Resume::Fast);
                            } else {
                                self.split_start(cpu);
                            }
                        }
                        Err(abort) => self.on_segment_abort(cpu, abort.code().cause()),
                    }
                }
                None
            }
            Ok(Step::Done(v)) => match self.split_commit(cpu, true) {
                Ok(()) => {
                    self.finish_op(cpu);
                    self.mode = if self.job.is_some() {
                        Mode::Reclaim(Resume::Idle)
                    } else {
                        Mode::Idle
                    };
                    Some(v)
                }
                Err(abort) => {
                    self.on_segment_abort(cpu, abort.code().cause());
                    None
                }
            },
        }
    }

    /// `SPLIT_COMMIT`: exposes registers, flushes dirty shadow slots, bumps
    /// the splits counter, and commits the segment. On success, staged
    /// retires enter the free path.
    fn split_commit(&mut self, cpu: &mut Cpu, is_final: bool) -> Result<(), Abort> {
        let engine = self.rt.engine.clone();
        let tx = self.tx.as_mut().expect("fast path without a transaction");

        // EXPOSE_REGISTERS (omitted on the final commit, as in the paper:
        // the frame is deactivated right after).
        if self.rt.config.expose_registers && !is_final {
            for i in 0..REG_SLOTS as u64 {
                engine.tx_write(cpu, tx, self.ctx, OFF_REGISTERS + i, self.regs[i as usize])?;
            }
        }
        // Flush dirty shadow stack slots (the paper's stack writes are
        // transactional stores; ours are batched here with identical
        // commit-time visibility).
        let mut dirty = self.dirty;
        while dirty != 0 {
            let i = dirty.trailing_zeros() as u64;
            dirty &= dirty - 1;
            engine.tx_write(cpu, tx, self.ctx, OFF_STACK + i, self.locals[i as usize])?;
        }
        engine.tx_write(cpu, tx, self.ctx, OFF_SPLITS, u64::from(self.split_idx + 1))?;
        engine.commit(cpu, tx)?;

        // Committed: bookkeeping.
        self.dirty = 0;
        self.seg_allocs.clear();
        self.predictor
            .on_commit(self.op_id as usize, self.split_idx as usize);
        self.split_idx += 1;
        self.fails_at_one = 0;
        self.stats.committed_segments += 1;
        self.stats.sum_segment_lengths += u64::from(self.steps_in_segment);
        self.stats
            .seg_lengths
            .record(u64::from(self.steps_in_segment));

        // Staged retires become FREE calls (non-transactional, post-commit).
        if !self.staged.is_empty() {
            let staged = std::mem::take(&mut self.staged);
            let heap = self.rt.heap().clone();
            heap.store(cpu, self.ctx, OFF_STAGED_COUNT, 0);
            for (i, p) in staged.iter().enumerate() {
                heap.store(cpu, self.ctx, OFF_STAGED + i as u64, 0);
                self.free(cpu, *p);
            }
        }
        Ok(())
    }

    /// `MANAGE_SPLIT_ABORT` plus segment restart (or slow-path fallback).
    fn on_segment_abort(&mut self, cpu: &mut Cpu, cause: AbortCause) {
        self.stats.segment_aborts += 1;
        self.stats.abort_causes.add(cause);
        let at_minimum = self.segment_limit <= self.rt.config.min_split_length;
        self.predictor
            .on_abort(self.op_id as usize, self.split_idx as usize);
        if at_minimum {
            self.fails_at_one += 1;
        } else {
            self.fails_at_one = 0;
        }
        self.force_commit = false;
        self.user_region = false;
        self.staged.clear();

        // Nodes allocated in the aborted segment were never published;
        // return them to the heap.
        let heap = self.rt.heap().clone();
        for a in std::mem::take(&mut self.seg_allocs) {
            heap.free_unpublished(cpu, a);
        }

        self.restore_from_committed();

        if self.fails_at_one >= self.rt.config.slow_fail_threshold {
            self.enter_slow(cpu);
        } else {
            self.split_start(cpu);
        }
    }

    /// Restores the local mirrors from committed shadow state — what the
    /// hardware's register checkpoint restore does on abort.
    fn restore_from_committed(&mut self) {
        let heap = self.rt.heap();
        for i in 0..self.slots_used as u64 {
            self.locals[i as usize] = heap.peek(self.ctx, OFF_STACK + i);
        }
        self.dirty = 0;
        for i in 0..REG_SLOTS as u64 {
            self.regs[i as usize] = heap.peek(self.ctx, OFF_REGISTERS + i);
        }
    }

    /// Common operation epilogue: bump `oper_counter` and deactivate. No
    /// fence: the final segment commit already published everything the
    /// scanners rely on.
    fn finish_op(&mut self, cpu: &mut Cpu) {
        let heap = self.rt.heap().clone();
        self.oper_counter += 1;
        heap.store(cpu, self.ctx, OFF_OPER_COUNTER, self.oper_counter);
        heap.store(cpu, self.ctx, OFF_ACTIVE, 0);
        self.stats.ops += 1;
        self.stats.sum_splits_per_op += u64::from(self.split_idx);
        if self.op_used_slow {
            self.stats.slow_ops += 1;
        }
    }

    // ------------------------------------------------------------------
    // Slow path (Algorithm 5).
    // ------------------------------------------------------------------

    /// Switches the remainder of the operation to the software slow path.
    fn enter_slow(&mut self, cpu: &mut Cpu) {
        let heap = self.rt.heap().clone();
        self.op_used_slow = true;
        self.refset_count = 0;
        self.refset_mirror.clear();
        heap.store(cpu, self.ctx, OFF_REFSET_COUNT, 0);
        heap.store(cpu, self.ctx, OFF_SLOW_FLAG, 1);
        heap.fetch_add(cpu, self.rt.slow_count, 0, 1);
        heap.fence(cpu);
        self.mode = Mode::Slow;
    }

    fn step_slow(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        let result = body(self, cpu);
        // SLOW_CHECKPOINT (policy bookkeeping only).
        cpu.charge(cpu.costs.local_op);
        match result {
            // The slow path has no transactions; bodies cannot observe
            // aborts here.
            Err(abort) => unreachable!("abort on the slow path: {abort}"),
            Ok(Step::Continue) => {
                if self.job.is_some() {
                    self.mode = Mode::Reclaim(Resume::Slow);
                }
                None
            }
            Ok(Step::Done(v)) => {
                self.slow_commit(cpu);
                self.finish_op(cpu);
                self.mode = if self.job.is_some() {
                    Mode::Reclaim(Resume::Idle)
                } else {
                    Mode::Idle
                };
                Some(v)
            }
        }
    }

    /// `SLOW_COMMIT`: resets the reference set and leaves the slow path.
    fn slow_commit(&mut self, cpu: &mut Cpu) {
        let heap = self.rt.heap().clone();
        self.refset_count = 0;
        self.refset_mirror.clear();
        heap.store(cpu, self.ctx, OFF_REFSET_COUNT, 0);
        heap.store(cpu, self.ctx, OFF_SLOW_FLAG, 0);
        let prev = heap.fetch_add(cpu, self.rt.slow_count, 0, 1u64.wrapping_neg());
        debug_assert!(
            prev >= 1,
            "slow_count underflow: slow_commit without a matching enter_slow"
        );
        heap.fence(cpu);
    }

    /// `SLOW_READ`: load, publish to the reference set, fence, revalidate.
    fn slow_read(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Word {
        let heap = self.rt.heap().clone();
        loop {
            let v = heap.load(cpu, addr, off);
            self.refset_add(cpu, v);
            heap.fence(cpu);
            if heap.load(cpu, addr, off) == v {
                return v;
            }
            // A restart implies another thread made progress.
            self.refset_remove(cpu, v);
        }
    }

    fn refset_add(&mut self, cpu: &mut Cpu, v: Word) {
        // Algorithm 5's reference set is a *set*: duplicate values (the
        // same node revisited, repeated key words) occupy one shared slot.
        // The mirror counts insertions so that a retry's REMOVE releases
        // only its own claim — dropping the shared slot while another read
        // still relies on it would unprotect a live reference. The
        // membership probe costs one load.
        cpu.charge(cpu.costs.load);
        let count = self.refset_mirror.entry(v).or_insert(0);
        *count += 1;
        if *count > 1 {
            return;
        }
        assert!(
            (self.refset_count as usize) < REFSET_CAP,
            "slow-path reference set overflow; raise layout::REFSET_CAP"
        );
        let heap = self.rt.heap().clone();
        heap.store(cpu, self.ctx, OFF_REFSET + self.refset_count, v);
        self.refset_count += 1;
        heap.store(cpu, self.ctx, OFF_REFSET_COUNT, self.refset_count);
    }

    fn refset_remove(&mut self, cpu: &mut Cpu, v: Word) {
        match self.refset_mirror.get_mut(&v) {
            Some(count) if *count > 1 => {
                *count -= 1;
                return; // another read still claims this value
            }
            Some(_) => {
                self.refset_mirror.remove(&v);
            }
            None => return,
        }
        let heap = self.rt.heap().clone();
        for i in (0..self.refset_count).rev() {
            if heap.load(cpu, self.ctx, OFF_REFSET + i) == v {
                let last = heap.load(cpu, self.ctx, OFF_REFSET + self.refset_count - 1);
                heap.store(cpu, self.ctx, OFF_REFSET + i, last);
                self.refset_count -= 1;
                heap.store(cpu, self.ctx, OFF_REFSET_COUNT, self.refset_count);
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // FREE (Algorithm 1 entry point) and the scan driver.
    // ------------------------------------------------------------------

    /// `FREE`: batches the candidate; schedules `SCAN_AND_FREE` when the
    /// batch exceeds `max_free`.
    fn free(&mut self, cpu: &mut Cpu, ptr: Addr) {
        self.stats.free_calls += 1;
        self.rt.heap().note_retire(cpu.thread_id, cpu.now(), ptr);
        self.free_set.push(Retired {
            addr: ptr,
            retired_at: cpu.now(),
        });
        if self.free_set.len() > self.rt.config.max_free && self.job.is_none() {
            self.start_scan(cpu);
        }
    }

    /// Moves the free set into a new [`ScanJob`], recycling the previous
    /// scan's buffers (the emptied candidates vector becomes the new
    /// free-set storage, so the hot path allocates nothing).
    fn start_scan(&mut self, cpu: &mut Cpu) {
        let spare = self.scan_bufs.take_spare();
        let candidates = std::mem::replace(&mut self.free_set, spare);
        let bufs = std::mem::take(&mut self.scan_bufs);
        self.job = Some(ScanJob::new(&self.rt, cpu, candidates, bufs));
    }

    fn step_reclaim(&mut self, cpu: &mut Cpu) {
        let rt = self.rt.clone();
        let job = self.job.as_mut().expect("reclaim mode without a job");
        if job.advance(&rt, cpu, &mut self.stats) {
            let job = self.job.take().expect("job present");
            self.scan_bufs = job.finish_into(&mut self.free_set);
            self.stats.scans += 1;
            match self.mode {
                Mode::Reclaim(Resume::Idle) => self.mode = Mode::Idle,
                Mode::Reclaim(Resume::Fast) => {
                    self.mode = Mode::Fast;
                    self.split_start(cpu);
                }
                Mode::Reclaim(Resume::Slow) => self.mode = Mode::Slow,
                other => unreachable!("reclaim finished in mode {other:?}"),
            }
        }
    }
}

// ----------------------------------------------------------------------
// The instrumented instruction set (fast + slow path dispatch).
// ----------------------------------------------------------------------

impl OpMem for StThread {
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort> {
        match self.mode {
            Mode::Fast => {
                let engine = &self.rt.engine;
                let tx = self.tx.as_mut().expect("fast load without tx");
                engine.tx_read(cpu, tx, addr, off)
            }
            Mode::Slow => Ok(self.slow_read(cpu, addr, off)),
            _ => panic!("memory access outside an operation"),
        }
    }

    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        _guard: usize,
    ) -> Result<Word, Abort> {
        let v = self.load(cpu, addr, off)?;
        if matches!(self.mode, Mode::Fast) {
            // Track the loaded pointer in the register file (exposed at the
            // next segment commit, like EXPOSE_REGISTERS).
            self.regs[self.reg_cursor] = v;
            self.reg_cursor = (self.reg_cursor + 1) % REG_SLOTS;
            cpu.charge(cpu.costs.local_op);
        }
        Ok(v)
    }

    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort> {
        match self.mode {
            Mode::Fast => {
                let engine = &self.rt.engine;
                let tx = self.tx.as_mut().expect("fast store without tx");
                engine.tx_write(cpu, tx, addr, off, value)
            }
            Mode::Slow => {
                // SLOW_WRITE: record the location, then write through the
                // engine so speculative readers are doomed.
                self.slow_read(cpu, addr, off);
                self.rt.engine.nontx_write(cpu, addr, off, value);
                Ok(())
            }
            _ => panic!("memory access outside an operation"),
        }
    }

    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        match self.mode {
            Mode::Fast => {
                let engine = &self.rt.engine;
                let tx = self.tx.as_mut().expect("fast cas without tx");
                engine.tx_cas(cpu, tx, addr, off, expected, new)
            }
            Mode::Slow => {
                self.slow_read(cpu, addr, off);
                Ok(self.rt.engine.nontx_cas(cpu, addr, off, expected, new))
            }
            _ => panic!("memory access outside an operation"),
        }
    }

    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr {
        let addr = self
            .rt
            .heap()
            .alloc(cpu, words)
            .expect("simulated heap exhausted; enlarge HeapConfig::capacity_words");
        if matches!(self.mode, Mode::Fast) {
            self.seg_allocs.push(addr);
        }
        addr
    }

    fn retire_unlinked(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        match self.mode {
            Mode::Fast => {
                // Stage transactionally; the forced commit below makes the
                // unlink + retire atomic, and a commit failure re-runs the
                // block with the stage rolled back (exactly-once FREE).
                let k = self.staged.len();
                assert!(k < STAGED_CAP, "too many retires in one segment");
                let engine = self.rt.engine.clone();
                let tx = self.tx.as_mut().expect("fast retire without tx");
                engine.tx_write(cpu, tx, self.ctx, OFF_STAGED + k as u64, addr.raw())?;
                engine.tx_write(cpu, tx, self.ctx, OFF_STAGED_COUNT, k as u64 + 1)?;
                self.staged.push(addr);
                self.force_commit = true;
                Ok(())
            }
            Mode::Slow => {
                // The slow path is non-speculative; FREE runs directly.
                self.free(cpu, addr);
                Ok(())
            }
            _ => panic!("retire outside an operation"),
        }
    }

    fn force_split(&mut self, cpu: &mut Cpu) {
        if matches!(self.mode, Mode::Fast) {
            cpu.charge(cpu.costs.local_op);
            self.force_commit = true;
        }
    }

    fn user_tx_begin(&mut self, cpu: &mut Cpu) {
        if matches!(self.mode, Mode::Fast) {
            cpu.charge(cpu.costs.local_op);
            self.user_region = true;
        }
    }

    fn user_tx_end(&mut self, cpu: &mut Cpu) -> Result<(), Abort> {
        if matches!(self.mode, Mode::Fast) && self.user_region {
            self.user_region = false;
            // Expose the register file at the region boundary, as the
            // paper requires; the values commit with the segment.
            if self.rt.config.expose_registers {
                let engine = self.rt.engine.clone();
                let tx = self.tx.as_mut().expect("fast path without tx");
                for i in 0..REG_SLOTS as u64 {
                    engine.tx_write(cpu, tx, self.ctx, OFF_REGISTERS + i, self.regs[i as usize])?;
                }
            }
        }
        Ok(())
    }

    fn get_local(&mut self, cpu: &mut Cpu, slot: usize) -> Word {
        assert!(slot < self.slots_used, "undeclared local slot {slot}");
        match self.mode {
            Mode::Fast => {
                cpu.charge(cpu.costs.local_op);
                self.locals[slot]
            }
            Mode::Slow => self.rt.heap().load(cpu, self.ctx, OFF_STACK + slot as u64),
            _ => panic!("local access outside an operation"),
        }
    }

    fn set_local(&mut self, cpu: &mut Cpu, slot: usize, value: Word) {
        assert!(slot < self.slots_used, "undeclared local slot {slot}");
        match self.mode {
            Mode::Fast => {
                cpu.charge(cpu.costs.local_op);
                self.locals[slot] = value;
                self.dirty |= 1 << slot;
            }
            Mode::Slow => {
                let heap = self.rt.heap().clone();
                heap.store(cpu, self.ctx, OFF_STACK + slot as u64, value);
            }
            _ => panic!("local access outside an operation"),
        }
    }
}
