//! Dynamic split-length predictor (paper section 5.3).
//!
//! Every *segment* — identified by (operation id, split index) — has its own
//! length limit, in basic blocks. Limits start high (50), shrink by one
//! after a streak of consecutive aborts, and grow by one after a streak of
//! consecutive commits, converging to "a segment length that matches the
//! capacity of the hardware and the conflict level of the software".

/// Per-segment predictor entry.
#[derive(Debug, Clone)]
struct Entry {
    limit: u32,
    abort_streak: u32,
    commit_streak: u32,
}

/// The per-thread table of segment length limits.
///
/// # Examples
///
/// ```
/// use stacktrack::predictor::SplitPredictor;
///
/// let mut p = SplitPredictor::new(50, 1, 200, 5, 5);
/// assert_eq!(p.limit(0, 0), 50);
/// for _ in 0..5 {
///     p.on_abort(0, 0);
/// }
/// assert_eq!(p.limit(0, 0), 49);
/// ```
#[derive(Debug)]
pub struct SplitPredictor {
    initial: u32,
    min: u32,
    max: u32,
    abort_streak: u32,
    commit_streak: u32,
    table: Vec<Vec<Entry>>,
}

impl SplitPredictor {
    /// Creates a predictor with the given initial limit, bounds, and streak
    /// thresholds.
    pub fn new(initial: u32, min: u32, max: u32, abort_streak: u32, commit_streak: u32) -> Self {
        assert!(min >= 1 && initial >= min && initial <= max);
        assert!(abort_streak >= 1 && commit_streak >= 1);
        Self {
            initial,
            min,
            max,
            abort_streak,
            commit_streak,
            table: Vec::new(),
        }
    }

    fn entry(&mut self, op: usize, split: usize) -> &mut Entry {
        if self.table.len() <= op {
            self.table.resize_with(op + 1, Vec::new);
        }
        let row = &mut self.table[op];
        if row.len() <= split {
            row.resize_with(split + 1, || Entry {
                limit: self.initial,
                abort_streak: 0,
                commit_streak: 0,
            });
        }
        &mut row[split]
    }

    /// Current length limit of segment (`op`, `split`), in basic blocks.
    pub fn limit(&mut self, op: usize, split: usize) -> u32 {
        self.entry(op, split).limit
    }

    /// Records an abort of segment (`op`, `split`); after
    /// `abort_streak` consecutive aborts the limit shrinks by one.
    pub fn on_abort(&mut self, op: usize, split: usize) {
        let (min, streak) = (self.min, self.abort_streak);
        let e = self.entry(op, split);
        e.commit_streak = 0;
        e.abort_streak += 1;
        if e.abort_streak >= streak {
            e.abort_streak = 0;
            e.limit = e.limit.saturating_sub(1).max(min);
        }
    }

    /// Records a commit of segment (`op`, `split`); after
    /// `commit_streak` consecutive commits the limit grows by one.
    pub fn on_commit(&mut self, op: usize, split: usize) {
        let (max, streak) = (self.max, self.commit_streak);
        let e = self.entry(op, split);
        e.abort_streak = 0;
        e.commit_streak += 1;
        if e.commit_streak >= streak {
            e.commit_streak = 0;
            e.limit = (e.limit + 1).min(max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred() -> SplitPredictor {
        SplitPredictor::new(50, 1, 200, 5, 5)
    }

    #[test]
    fn initial_limit_everywhere() {
        let mut p = pred();
        assert_eq!(p.limit(0, 0), 50);
        assert_eq!(p.limit(3, 17), 50);
    }

    #[test]
    fn five_consecutive_aborts_shrink() {
        let mut p = pred();
        for i in 0..4 {
            p.on_abort(0, 0);
            assert_eq!(p.limit(0, 0), 50, "after {} aborts", i + 1);
        }
        p.on_abort(0, 0);
        assert_eq!(p.limit(0, 0), 49);
    }

    #[test]
    fn commit_resets_abort_streak() {
        let mut p = pred();
        for _ in 0..4 {
            p.on_abort(0, 0);
        }
        p.on_commit(0, 0);
        p.on_abort(0, 0);
        assert_eq!(p.limit(0, 0), 50, "streak must have been reset");
    }

    #[test]
    fn five_consecutive_commits_grow() {
        let mut p = pred();
        for _ in 0..5 {
            p.on_commit(0, 0);
        }
        assert_eq!(p.limit(0, 0), 51);
    }

    #[test]
    fn limits_respect_bounds() {
        let mut p = SplitPredictor::new(2, 1, 3, 1, 1);
        p.on_abort(0, 0);
        assert_eq!(p.limit(0, 0), 1);
        p.on_abort(0, 0);
        assert_eq!(p.limit(0, 0), 1, "never below min");
        for _ in 0..10 {
            p.on_commit(0, 0);
        }
        assert_eq!(p.limit(0, 0), 3, "never above max");
    }

    #[test]
    fn segments_are_independent() {
        let mut p = SplitPredictor::new(10, 1, 20, 1, 1);
        p.on_abort(0, 0);
        p.on_commit(0, 1);
        p.on_abort(1, 0);
        assert_eq!(p.limit(0, 0), 9);
        assert_eq!(p.limit(0, 1), 11);
        assert_eq!(p.limit(1, 0), 9);
        assert_eq!(p.limit(1, 1), 10);
    }

    #[test]
    fn converges_under_alternating_load() {
        // A segment that aborts whenever its limit exceeds 7 must settle
        // at 7 (the "capacity of the hardware").
        let mut p = SplitPredictor::new(50, 1, 200, 5, 5);
        for _ in 0..3000 {
            if p.limit(0, 0) > 7 {
                p.on_abort(0, 0);
            } else {
                p.on_commit(0, 0);
            }
        }
        assert!(
            (6..=8).contains(&p.limit(0, 0)),
            "converged to {}",
            p.limit(0, 0)
        );
    }
}
