//! `SCAN_AND_FREE`: the stack/register scanning reclaimer (Algorithm 1).
//!
//! A `ScanJob` inspects every registered thread's exposed state for
//! references to a batch of free candidates, then frees the unreferenced
//! ones through [`st_simhtm::HtmEngine::free_object`] (which dooms any
//! in-flight transaction still holding the node in its data set).
//!
//! The job is a resumable state machine: each `ScanJob::advance` call
//! inspects a bounded number of words, so scans interleave with other
//! threads in the discrete-event simulator exactly like the paper's
//! non-transactional `FREE` interleaves with running threads. That is what
//! makes the split-counter consistency protocol observable: if the
//! inspected thread commits a segment between two chunks of its
//! inspection, `splits` moves and the inspection restarts (unless
//! `oper_counter` moved too, in which case the operation finished and the
//! thread holds no protected references).
//!
//! Word comparison strips the low three tag bits (lock-free structures
//! store Harris marks there), and optionally resolves interior pointers
//! through the heap's allocation-table range query (section 5.5).

use crate::config::ScanMode;
use crate::layout::{
    OFF_ACTIVE, OFF_OPER_COUNTER, OFF_REFSET, OFF_REFSET_COUNT, OFF_REGISTERS, OFF_SPLITS,
    OFF_STACK, OFF_STACK_DEPTH, REG_SLOTS,
};
use crate::runtime::StRuntime;
use crate::stats::StThreadStats;
use st_machine::{Cpu, Cycles};
use st_simheap::tagged::TAG_MASK;
use st_simheap::{Addr, Word};
use std::collections::HashSet;

/// A retired node awaiting proof of unreachability, stamped with its
/// retirement time so the registry can report retire-to-free latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Retired {
    /// Base address of the retired object.
    pub(crate) addr: Addr,
    /// Virtual time of the `FREE` call that enqueued it.
    pub(crate) retired_at: Cycles,
}

/// One thread inspection in progress.
#[derive(Debug)]
struct Inspection {
    ctx: Addr,
    oper_pre: Word,
    htm_pre: Word,
    depth: u64,
    refset_len: u64,
    cursor: u64,
    found: bool,
}

impl Inspection {
    fn total_words(&self) -> u64 {
        self.depth + REG_SLOTS as u64 + self.refset_len
    }

    fn word_offset(&self, i: u64) -> u64 {
        if i < self.depth {
            OFF_STACK + i
        } else if i < self.depth + REG_SLOTS as u64 {
            OFF_REGISTERS + (i - self.depth)
        } else {
            OFF_REFSET + (i - self.depth - REG_SLOTS as u64)
        }
    }
}

#[derive(Debug)]
enum State {
    /// Algorithm 1: per candidate, walk all threads.
    Linear {
        cand: usize,
        thread: usize,
        insp: Option<Inspection>,
        found: bool,
    },
    /// Section 5.2 optimization, phase 1: hash every thread's words once.
    HashedCollect {
        thread: usize,
        insp: Option<Inspection>,
    },
    /// Section 5.2 optimization, phase 2: probe candidates.
    HashedJudge {
        cand: usize,
    },
    /// Batched lookup, phase 1: walk every thread once, binary-searching
    /// each word against the sorted candidate index.
    BatchedCollect {
        thread: usize,
        insp: Option<Inspection>,
    },
    /// Batched lookup, phase 2: read each candidate's verdict off the hit
    /// bitmap.
    BatchedJudge {
        cand: usize,
    },
    Finished,
}

/// Scratch buffers a [`ScanJob`] works in, recycled across scans so the
/// steady state allocates nothing: the hot path of a long run is
/// retire → batch → scan → retire again, and each of these vectors (and
/// the hash table) keeps its capacity from one scan to the next.
#[derive(Debug, Default)]
pub(crate) struct ScanBuffers {
    /// Candidate base addresses, sorted for binary search ([`ScanMode::Batched`]).
    sorted: Vec<Word>,
    /// Hit flags parallel to `sorted` ([`ScanMode::Batched`]).
    hits: Vec<bool>,
    /// Scanned-word set ([`ScanMode::Hashed`]).
    table: HashSet<Word>,
    /// Candidates that survived the scan (drained back to the free set).
    survivors: Vec<Retired>,
    /// An emptied candidates vector, handed back as the next free set's
    /// storage.
    spare: Vec<Retired>,
}

impl ScanBuffers {
    /// Takes the recycled candidates vector (empty, capacity retained) to
    /// serve as the next free-set storage.
    pub(crate) fn take_spare(&mut self) -> Vec<Retired> {
        std::mem::take(&mut self.spare)
    }

    fn reset(&mut self) {
        self.sorted.clear();
        self.hits.clear();
        self.table.clear();
        self.survivors.clear();
    }
}

/// A resumable `SCAN_AND_FREE` over a batch of candidates.
#[derive(Debug)]
pub(crate) struct ScanJob {
    candidates: Vec<Retired>,
    state: State,
    slow_active: bool,
    interior: bool,
    chunk: u64,
    bufs: ScanBuffers,
    probe_cycles: Cycles,
    words_scanned: u64,
}

/// Compares a binary search over `n` sorted candidates costs (charged per
/// probed word in [`ScanMode::Batched`]).
fn search_compares(n: usize) -> u64 {
    u64::from(n.max(1).ilog2()) + 1
}

/// Charges `compares` candidate-comparison steps to the CPU and the job's
/// probe accounting (reported as `scan.candidate_probe_cycles`).
fn charge_probe(cpu: &mut Cpu, acc: &mut Cycles, compares: u64) {
    let cost = cpu.costs.local_op * compares;
    cpu.charge(cost);
    *acc += cost;
}

impl ScanJob {
    /// Builds a job over `candidates` (all already unlinked), working in
    /// the recycled `bufs`.
    pub(crate) fn new(
        rt: &StRuntime,
        cpu: &mut Cpu,
        mut candidates: Vec<Retired>,
        mut bufs: ScanBuffers,
    ) -> Self {
        debug_assert!(!candidates.is_empty());
        bufs.reset();
        // Check the global slow-path counter once, up front (paper 5.4).
        let slow_active = rt.heap().load(cpu, rt.slow_count, 0) != 0;
        let mut probe_cycles = 0;
        // A base address can land in one batch twice (the allocator reuses
        // it between two retires of the same free set). Duplicates corrupt
        // every mode's verdict: Linear and Hashed judge each copy
        // independently (double free), and the Batched index's binary
        // search over a sorted-with-duplicates slice can set the hit flag
        // on one twin while the judge reads the other, freeing a block a
        // frame still references. Collapse to the first occurrence — the
        // earliest retire — before building any index.
        if candidates.len() > 1 {
            let table = &mut bufs.table;
            candidates.retain(|r| table.insert(r.addr.raw()));
            table.clear();
            charge_probe(cpu, &mut probe_cycles, candidates.len() as u64);
        }
        let state = match rt.config.scan_mode {
            ScanMode::Linear => State::Linear {
                cand: 0,
                thread: 0,
                insp: None,
                found: false,
            },
            ScanMode::Hashed => State::HashedCollect {
                thread: 0,
                insp: None,
            },
            ScanMode::Batched => {
                // Build the sorted candidate index up front; sorting the
                // batch costs n·log n compares, charged to the scanning
                // thread like every other probe.
                bufs.sorted.extend(candidates.iter().map(|r| r.addr.raw()));
                bufs.sorted.sort_unstable();
                bufs.hits.resize(bufs.sorted.len(), false);
                charge_probe(
                    cpu,
                    &mut probe_cycles,
                    candidates.len() as u64 * search_compares(candidates.len()),
                );
                State::BatchedCollect {
                    thread: 0,
                    insp: None,
                }
            }
        };
        Self {
            candidates,
            state,
            slow_active,
            interior: rt.config.interior_pointers,
            chunk: rt.config.scan_chunk_words.max(1),
            bufs,
            probe_cycles,
            words_scanned: 0,
        }
    }

    /// Runs one bounded chunk of the scan; returns `true` when the job is
    /// complete and [`ScanJob::take_survivors`] may be called.
    pub(crate) fn advance(
        &mut self,
        rt: &StRuntime,
        cpu: &mut Cpu,
        stats: &mut StThreadStats,
    ) -> bool {
        let started = cpu.now();
        let words_before = stats.scan_words;
        let done = self.advance_inner(rt, cpu, stats);
        stats.scan_cycles += cpu.now() - started;
        self.words_scanned += stats.scan_words - words_before;
        if done {
            stats.scan_depths.record(self.words_scanned);
            stats.scan_probe_cycles += self.probe_cycles;
            stats.candidate_probe_cycles.record(self.probe_cycles);
        }
        done
    }

    fn advance_inner(&mut self, rt: &StRuntime, cpu: &mut Cpu, stats: &mut StThreadStats) -> bool {
        match &mut self.state {
            State::Linear {
                cand,
                thread,
                insp,
                found,
            } => {
                let Some(&target) = self.candidates.get(*cand) else {
                    self.state = State::Finished;
                    return true;
                };
                if *found || *thread >= rt.max_threads() {
                    // Verdict for this candidate.
                    if *found {
                        self.bufs.survivors.push(target);
                        stats.survivors += 1;
                    } else {
                        free_candidate(rt, cpu, stats, target);
                    }
                    *cand += 1;
                    *thread = 0;
                    *found = false;
                    *insp = None;
                    return false;
                }
                let interior = self.interior;
                let probe = &mut self.probe_cycles;
                match step_inspection(
                    rt,
                    cpu,
                    stats,
                    insp,
                    *thread,
                    self.slow_active,
                    self.chunk,
                    &mut |rt, cpu, word| {
                        charge_probe(cpu, probe, 1);
                        matches_candidate(rt, cpu, interior, target.addr, word)
                    },
                ) {
                    InspectStep::Skip | InspectStep::ThreadDone { hit: false } => {
                        *thread += 1;
                        *insp = None;
                    }
                    InspectStep::ThreadDone { hit: true } => {
                        *found = true;
                        *insp = None;
                    }
                    InspectStep::InProgress => {}
                }
                false
            }
            State::HashedCollect { thread, insp } => {
                if *thread >= rt.max_threads() {
                    self.state = State::HashedJudge { cand: 0 };
                    return false;
                }
                let interior = self.interior;
                let table = &mut self.bufs.table;
                let probe = &mut self.probe_cycles;
                match step_inspection(
                    rt,
                    cpu,
                    stats,
                    insp,
                    *thread,
                    self.slow_active,
                    self.chunk,
                    &mut |rt, cpu, word| {
                        let stripped = word & !TAG_MASK;
                        charge_probe(cpu, probe, 1);
                        table.insert(stripped);
                        if interior {
                            if let Some(base) = resolve_base(rt, cpu, stripped) {
                                charge_probe(cpu, probe, 1);
                                table.insert(base.raw());
                            }
                        }
                        false // collection never "hits"
                    },
                ) {
                    InspectStep::Skip | InspectStep::ThreadDone { .. } => {
                        *thread += 1;
                        *insp = None;
                    }
                    InspectStep::InProgress => {}
                }
                false
            }
            State::HashedJudge { cand } => {
                let Some(&target) = self.candidates.get(*cand) else {
                    self.state = State::Finished;
                    return true;
                };
                charge_probe(cpu, &mut self.probe_cycles, 1);
                if self.bufs.table.contains(&target.addr.raw()) {
                    self.bufs.survivors.push(target);
                    stats.survivors += 1;
                } else {
                    free_candidate(rt, cpu, stats, target);
                }
                *cand += 1;
                false
            }
            State::BatchedCollect { thread, insp } => {
                if *thread >= rt.max_threads() {
                    self.state = State::BatchedJudge { cand: 0 };
                    return false;
                }
                let interior = self.interior;
                let compares = search_compares(self.bufs.sorted.len());
                let sorted = &self.bufs.sorted;
                let hits = &mut self.bufs.hits;
                let probe = &mut self.probe_cycles;
                match step_inspection(
                    rt,
                    cpu,
                    stats,
                    insp,
                    *thread,
                    self.slow_active,
                    self.chunk,
                    &mut |rt, cpu, word| {
                        let stripped = word & !TAG_MASK;
                        charge_probe(cpu, probe, compares);
                        if let Ok(i) = sorted.binary_search(&stripped) {
                            hits[i] = true;
                        }
                        if interior {
                            if let Some(base) = resolve_base(rt, cpu, stripped) {
                                charge_probe(cpu, probe, compares);
                                if let Ok(i) = sorted.binary_search(&base.raw()) {
                                    hits[i] = true;
                                }
                            }
                        }
                        false // the verdict is read off the bitmap later
                    },
                ) {
                    InspectStep::Skip | InspectStep::ThreadDone { .. } => {
                        *thread += 1;
                        *insp = None;
                    }
                    InspectStep::InProgress => {}
                }
                false
            }
            State::BatchedJudge { cand } => {
                let Some(&target) = self.candidates.get(*cand) else {
                    self.state = State::Finished;
                    return true;
                };
                charge_probe(
                    cpu,
                    &mut self.probe_cycles,
                    search_compares(self.bufs.sorted.len()),
                );
                let hit = match self.bufs.sorted.binary_search(&target.addr.raw()) {
                    Ok(i) => self.bufs.hits[i],
                    Err(_) => false,
                };
                if hit {
                    self.bufs.survivors.push(target);
                    stats.survivors += 1;
                } else {
                    free_candidate(rt, cpu, stats, target);
                }
                *cand += 1;
                false
            }
            State::Finished => true,
        }
    }

    /// Completes the job: survivors (candidates with a found reference) are
    /// appended to `free_set`, and the scratch — including the emptied
    /// candidates vector — is returned for the next scan to reuse.
    pub(crate) fn finish_into(mut self, free_set: &mut Vec<Retired>) -> ScanBuffers {
        debug_assert!(matches!(self.state, State::Finished));
        free_set.append(&mut self.bufs.survivors);
        self.candidates.clear();
        self.bufs.spare = self.candidates;
        self.bufs
    }
}

/// Frees a candidate no inspection found a reference to — the one shared
/// exit of all three scan modes' judge phases — unless the one-shot
/// skip-free mutation swallows it, in which case the block is neither
/// freed nor kept as a survivor and the heap-ledger oracle must flag it
/// as a leak at teardown.
fn free_candidate(rt: &StRuntime, cpu: &mut Cpu, stats: &mut StThreadStats, target: Retired) {
    if rt.consume_skip_free() {
        return;
    }
    rt.engine.free_object(cpu, target.addr);
    stats.frees_completed += 1;
    stats
        .free_latency
        .record(cpu.now().saturating_sub(target.retired_at));
}

enum InspectStep {
    /// Thread slot empty or idle; move on.
    Skip,
    /// Inspection completed consistently; `hit` is the match verdict.
    ThreadDone { hit: bool },
    /// Chunk budget exhausted; call again.
    InProgress,
}

/// Advances the inspection of one thread by one chunk, applying the
/// Algorithm 1 consistency protocol.
#[allow(clippy::too_many_arguments)]
fn step_inspection(
    rt: &StRuntime,
    cpu: &mut Cpu,
    stats: &mut StThreadStats,
    insp: &mut Option<Inspection>,
    thread: usize,
    slow_active: bool,
    chunk: u64,
    visit: &mut dyn FnMut(&StRuntime, &mut Cpu, Word) -> bool,
) -> InspectStep {
    let heap = rt.heap();
    let current = match insp {
        Some(i) => i,
        None => {
            let Some(ctx) = rt.ctx_of(thread) else {
                return InspectStep::Skip;
            };
            // Idle threads hold no protected references and are skipped
            // ("a scan does not always need to consider all threads").
            if heap.load(cpu, ctx, OFF_ACTIVE) == 0 {
                return InspectStep::Skip;
            }
            let oper_pre = heap.load(cpu, ctx, OFF_OPER_COUNTER);
            let htm_pre = heap.load(cpu, ctx, OFF_SPLITS);
            let depth = heap.load(cpu, ctx, OFF_STACK_DEPTH);
            let refset_len = if slow_active {
                heap.load(cpu, ctx, OFF_REFSET_COUNT)
            } else {
                0
            };
            stats.threads_inspected += 1;
            insp.insert(Inspection {
                ctx,
                oper_pre,
                htm_pre,
                depth,
                refset_len,
                cursor: 0,
                found: false,
            })
        }
    };

    let total = current.total_words();
    let end = (current.cursor + chunk).min(total);
    while current.cursor < end {
        let off = current.word_offset(current.cursor);
        let word = heap.load(cpu, current.ctx, off);
        stats.scan_words += 1;
        current.cursor += 1;
        if visit(rt, cpu, word) {
            current.found = true;
            // A hit is conservative regardless of concurrent commits; no
            // need to finish or revalidate this thread.
            return InspectStep::ThreadDone { hit: true };
        }
    }
    if current.cursor < total {
        return InspectStep::InProgress;
    }

    // Consistency check (Algorithm 1, lines 23-29): if the thread committed
    // another segment while we scanned — and is still in the same
    // operation — the snapshot may be torn; restart the inspection.
    if rt.config.mutation_skip_splits_recheck {
        return InspectStep::ThreadDone { hit: current.found };
    }
    let htm_post = heap.load(cpu, current.ctx, OFF_SPLITS);
    let oper_post = heap.load(cpu, current.ctx, OFF_OPER_COUNTER);
    if current.oper_pre == oper_post && current.htm_pre != htm_post {
        stats.scan_retries += 1;
        *insp = None;
        return InspectStep::InProgress;
    }
    InspectStep::ThreadDone { hit: false }
}

/// Whether `word` references `target`, stripping tag bits and optionally
/// resolving interior pointers.
fn matches_candidate(
    rt: &StRuntime,
    cpu: &mut Cpu,
    interior: bool,
    target: Addr,
    word: Word,
) -> bool {
    let stripped = word & !TAG_MASK;
    if stripped == target.raw() {
        return true;
    }
    if interior {
        if let Some(base) = resolve_base(rt, cpu, stripped) {
            return base == target;
        }
    }
    false
}

/// Range query against the allocation table (the paper's `malloc` hook),
/// charged as a couple of dependent loads.
fn resolve_base(rt: &StRuntime, cpu: &mut Cpu, stripped: Word) -> Option<Addr> {
    cpu.charge(cpu.costs.load * 2);
    rt.heap().object_base(stripped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StConfig;
    use crate::layout::{OFF_ACTIVE, OFF_STACK, OFF_STACK_DEPTH};
    use crate::runtime::StRuntime;
    use st_simheap::{Heap, HeapConfig};
    use st_simhtm::{HtmConfig, HtmEngine};
    use std::sync::Arc;

    fn runtime(mode: ScanMode, interior: bool, chunk: u64) -> Arc<StRuntime> {
        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 18,
            ..HeapConfig::default()
        }));
        let engine = Arc::new(HtmEngine::new(heap, HtmConfig::default(), 4));
        StRuntime::new(
            engine,
            StConfig {
                scan_mode: mode,
                interior_pointers: interior,
                scan_chunk_words: chunk,
                ..StConfig::default()
            },
            4,
        )
    }

    /// Registers a thread and plants `refs` in its committed shadow stack.
    fn plant(rt: &Arc<StRuntime>, slot: usize, refs: &[u64]) -> Addr {
        let th = rt.register_thread(slot);
        let ctx = th.ctx_addr();
        let heap = rt.heap();
        heap.poke(ctx, OFF_ACTIVE, 1);
        heap.poke(ctx, OFF_STACK_DEPTH, refs.len() as u64);
        for (i, &r) in refs.iter().enumerate() {
            heap.poke(ctx, OFF_STACK + i as u64, r);
        }
        std::mem::forget(th); // keep the registration alive for the test
        ctx
    }

    fn retired(candidates: &[Addr]) -> Vec<Retired> {
        candidates
            .iter()
            .map(|&addr| Retired {
                addr,
                retired_at: 0,
            })
            .collect()
    }

    fn drive(rt: &Arc<StRuntime>, candidates: Vec<Addr>) -> Vec<Addr> {
        let mut cpu = rt.test_cpu(3);
        let mut job = ScanJob::new(rt, &mut cpu, retired(&candidates), ScanBuffers::default());
        let mut stats = StThreadStats::default();
        let mut rounds = 0;
        while !job.advance(rt, &mut cpu, &mut stats) {
            rounds += 1;
            assert!(rounds < 100_000, "scan must terminate");
        }
        let mut survivors = Vec::new();
        job.finish_into(&mut survivors);
        survivors.into_iter().map(|r| r.addr).collect()
    }

    #[test]
    fn unreferenced_candidates_are_freed_referenced_survive() {
        for mode in [ScanMode::Linear, ScanMode::Hashed, ScanMode::Batched] {
            let rt = runtime(mode, false, 4);
            let heap = rt.heap().clone();
            let held = heap.alloc_untimed(2).unwrap();
            let loose = heap.alloc_untimed(2).unwrap();
            plant(&rt, 0, &[held.raw()]);

            let survivors = drive(&rt, vec![held, loose]);
            assert_eq!(survivors, vec![held], "{mode:?}");
            assert!(heap.is_live(held), "{mode:?}");
            assert!(!heap.is_live(loose), "{mode:?}");
        }
    }

    #[test]
    fn duplicate_candidates_in_one_batch_free_once() {
        // Allocator reuse can retire the same base address twice into one
        // free set. Without dedup, Linear/Hashed double-free it (allocator
        // panic) and Batched can free a block a frame still references.
        for mode in [ScanMode::Linear, ScanMode::Hashed, ScanMode::Batched] {
            let rt = runtime(mode, false, 8);
            let heap = rt.heap().clone();
            let reused = heap.alloc_untimed(2).unwrap();
            let held = heap.alloc_untimed(2).unwrap();
            plant(&rt, 0, &[held.raw()]);

            let survivors = drive(&rt, vec![reused, held, reused]);
            assert_eq!(survivors, vec![held], "{mode:?}");
            assert!(!heap.is_live(reused), "{mode:?}: freed exactly once");
            assert!(heap.is_live(held), "{mode:?}");
        }
    }

    #[test]
    fn duplicate_referenced_candidates_survive_once() {
        for mode in [ScanMode::Linear, ScanMode::Hashed, ScanMode::Batched] {
            let rt = runtime(mode, false, 8);
            let heap = rt.heap().clone();
            let held = heap.alloc_untimed(2).unwrap();
            plant(&rt, 0, &[held.raw()]);

            let survivors = drive(&rt, vec![held, held]);
            assert_eq!(survivors, vec![held], "{mode:?}: one copy survives");
            assert!(heap.is_live(held), "{mode:?}");
        }
    }

    #[test]
    fn skip_free_mutation_swallows_exactly_one_candidate() {
        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 18,
            ..HeapConfig::default()
        }));
        let engine = Arc::new(HtmEngine::new(heap, HtmConfig::default(), 4));
        let rt = StRuntime::new(
            engine,
            StConfig {
                scan_mode: ScanMode::Batched,
                scan_chunk_words: 8,
                mutation_skip_one_free: true,
                ..StConfig::default()
            },
            4,
        );
        let heap = rt.heap().clone();
        heap.set_ledger_oracle(true);
        let a = heap.alloc_untimed(2).unwrap();
        let b = heap.alloc_untimed(2).unwrap();
        let mut cpu = rt.test_cpu(3);
        heap.note_retire(3, cpu.now(), a);
        heap.note_retire(3, cpu.now(), b);

        let mut job = ScanJob::new(&rt, &mut cpu, retired(&[a, b]), ScanBuffers::default());
        let mut stats = StThreadStats::default();
        while !job.advance(&rt, &mut cpu, &mut stats) {}
        let mut survivors = Vec::new();
        job.finish_into(&mut survivors);

        assert!(
            survivors.is_empty(),
            "the swallowed block is not a survivor"
        );
        assert_eq!(stats.frees_completed, 1, "one of two verdicts freed");
        let leaks = heap.ledger_leaks();
        assert_eq!(leaks.len(), 1, "the ledger sees the swallowed block");
        assert_eq!(leaks[0].kind, st_simheap::LedgerKind::Leak);
    }

    #[test]
    fn tagged_references_protect_their_base() {
        let rt = runtime(ScanMode::Linear, false, 8);
        let heap = rt.heap().clone();
        let node = heap.alloc_untimed(2).unwrap();
        plant(&rt, 0, &[node.raw() | 1]); // Harris-marked pointer

        let survivors = drive(&rt, vec![node]);
        assert_eq!(survivors, vec![node]);
    }

    #[test]
    fn inactive_threads_are_skipped() {
        let rt = runtime(ScanMode::Linear, false, 8);
        let heap = rt.heap().clone();
        let node = heap.alloc_untimed(2).unwrap();
        let ctx = plant(&rt, 0, &[node.raw()]);
        heap.poke(ctx, OFF_ACTIVE, 0); // idle: its stale slot is ignored

        let survivors = drive(&rt, vec![node]);
        assert!(survivors.is_empty());
        assert!(!heap.is_live(node));
    }

    #[test]
    fn interior_pointers_need_the_range_query() {
        for (interior, expect_live) in [(true, true), (false, false)] {
            let rt = runtime(ScanMode::Linear, interior, 8);
            let heap = rt.heap().clone();
            let arr = heap.alloc_untimed(16).unwrap();
            plant(&rt, 0, &[arr.offset(7).raw()]);

            let survivors = drive(&rt, vec![arr]);
            assert_eq!(survivors.len(), usize::from(expect_live), "{interior}");
            assert_eq!(heap.is_live(arr), expect_live, "{interior}");
        }
    }

    #[test]
    fn chunk_size_does_not_change_the_verdict() {
        // The scan is resumable at any chunk granularity; the outcome is
        // identical (single-threaded: no concurrent commits).
        let mut baseline = None;
        for chunk in [1u64, 3, 7, 64] {
            let rt = runtime(ScanMode::Linear, false, chunk);
            let heap = rt.heap().clone();
            let a = heap.alloc_untimed(2).unwrap();
            let b = heap.alloc_untimed(2).unwrap();
            let c = heap.alloc_untimed(2).unwrap();
            plant(&rt, 0, &[a.raw(), 0, 0, c.raw()]);
            plant(&rt, 1, &[]);

            let mut survivors = drive(&rt, vec![a, b, c]);
            survivors.sort();
            let fingerprint = survivors.len();
            assert_eq!(survivors, vec![a, c], "chunk {chunk}");
            match baseline {
                None => baseline = Some(fingerprint),
                Some(f) => assert_eq!(f, fingerprint, "chunk {chunk}"),
            }
        }
    }

    #[test]
    fn single_pass_modes_collect_once_for_many_candidates() {
        // With N candidates, the single-pass modes' inspected word counts
        // stay flat while linear mode's grows with N.
        let count_words = |mode: ScanMode, n: u64| {
            let rt = runtime(mode, false, 64);
            let heap = rt.heap().clone();
            plant(&rt, 0, &[1, 2, 3, 4, 5, 6, 7, 8]);
            let candidates: Vec<Addr> = (0..n).map(|_| heap.alloc_untimed(2).unwrap()).collect();
            let mut cpu = rt.test_cpu(3);
            let mut job = ScanJob::new(&rt, &mut cpu, retired(&candidates), ScanBuffers::default());
            let mut stats = StThreadStats::default();
            while !job.advance(&rt, &mut cpu, &mut stats) {}
            stats.scan_words
        };
        let linear_1 = count_words(ScanMode::Linear, 1);
        let linear_8 = count_words(ScanMode::Linear, 8);
        assert!(linear_8 >= 8 * linear_1, "linear scales with candidates");
        for mode in [ScanMode::Hashed, ScanMode::Batched] {
            let one = count_words(mode, 1);
            let eight = count_words(mode, 8);
            assert_eq!(eight, one, "{mode:?} walks the stacks once");
        }
    }

    #[test]
    fn every_mode_records_probe_cycles() {
        for mode in [ScanMode::Linear, ScanMode::Hashed, ScanMode::Batched] {
            let rt = runtime(mode, false, 8);
            let heap = rt.heap().clone();
            let node = heap.alloc_untimed(2).unwrap();
            plant(&rt, 0, &[node.raw()]);
            let mut cpu = rt.test_cpu(3);
            let mut job = ScanJob::new(&rt, &mut cpu, retired(&[node]), ScanBuffers::default());
            let mut stats = StThreadStats::default();
            while !job.advance(&rt, &mut cpu, &mut stats) {}
            assert!(stats.scan_probe_cycles > 0, "{mode:?} charges probes");
            assert_eq!(
                stats.candidate_probe_cycles.count(),
                1,
                "{mode:?} records one histogram sample per scan"
            );
        }
    }

    #[test]
    fn finish_into_recycles_the_buffers() {
        let rt = runtime(ScanMode::Batched, false, 8);
        let heap = rt.heap().clone();
        let held = heap.alloc_untimed(2).unwrap();
        let loose = heap.alloc_untimed(2).unwrap();
        plant(&rt, 0, &[held.raw()]);
        let mut cpu = rt.test_cpu(3);
        let candidates = retired(&[held, loose]);
        let candidate_cap = candidates.capacity();
        let mut job = ScanJob::new(&rt, &mut cpu, candidates, ScanBuffers::default());
        let mut stats = StThreadStats::default();
        while !job.advance(&rt, &mut cpu, &mut stats) {}
        let mut free_set = Vec::new();
        let mut bufs = job.finish_into(&mut free_set);
        assert_eq!(free_set.len(), 1, "the referenced candidate survives");
        assert_eq!(free_set[0].addr, held);
        let spare = bufs.take_spare();
        assert!(spare.is_empty());
        assert_eq!(
            spare.capacity(),
            candidate_cap,
            "the candidates vector is handed back for the next free set"
        );
    }
}
