//! The global StackTrack runtime: activity array and shared counters.

use crate::config::StConfig;
use crate::layout::CTX_WORDS;
use crate::thread::StThread;
use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_simheap::{Addr, Heap};
use st_simhtm::HtmEngine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Global state shared by all StackTrack threads.
///
/// Owns the *activity array* — one word per thread slot holding the address
/// of that thread's context block (0 when unregistered) — and the global
/// slow-path counter scanners consult (paper section 5.4).
#[derive(Debug)]
pub struct StRuntime {
    /// The best-effort HTM engine operations run on.
    pub engine: Arc<HtmEngine>,
    /// Runtime configuration.
    pub config: StConfig,
    pub(crate) activity: Addr,
    pub(crate) slow_count: Addr,
    pub(crate) max_threads: usize,
    /// One-shot arming of [`StConfig::mutation_skip_one_free`]: the first
    /// scan verdict that would free a candidate swallows it instead.
    skip_free_armed: AtomicBool,
}

impl StRuntime {
    /// Creates a runtime for up to `max_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the activity array (sizing error).
    pub fn new(engine: Arc<HtmEngine>, config: StConfig, max_threads: usize) -> Arc<Self> {
        let heap = engine.heap().clone();
        let activity = heap
            .alloc_untimed(max_threads.max(1))
            .expect("heap too small for the activity array");
        let slow_count = heap
            .alloc_untimed(1)
            .expect("heap too small for the slow-path counter");
        let skip_free_armed = AtomicBool::new(config.mutation_skip_one_free);
        Arc::new(Self {
            engine,
            config,
            activity,
            slow_count,
            max_threads,
            skip_free_armed,
        })
    }

    /// Consumes the one-shot skip-free mutation: `true` exactly once per
    /// runtime when [`StConfig::mutation_skip_one_free`] is set, `false`
    /// otherwise.
    pub(crate) fn consume_skip_free(&self) -> bool {
        self.config.mutation_skip_one_free && self.skip_free_armed.swap(false, Ordering::Relaxed)
    }

    /// The heap underneath the engine.
    pub fn heap(&self) -> &Arc<Heap> {
        self.engine.heap()
    }

    /// Maximum number of registrable threads.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Registers thread `thread_id` (dense, `0..max_threads`), allocating
    /// its context block and publishing it in the activity array.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range or already taken.
    pub fn register_thread(self: &Arc<Self>, thread_id: usize) -> StThread {
        assert!(thread_id < self.max_threads, "thread slot out of range");
        let heap = self.heap();
        assert_eq!(
            heap.peek(self.activity, thread_id as u64),
            0,
            "thread slot {thread_id} already registered"
        );
        let ctx = heap
            .alloc_untimed(CTX_WORDS)
            .expect("heap too small for a thread context");
        heap.poke(self.activity, thread_id as u64, ctx.raw());
        StThread::new(self.clone(), thread_id, ctx)
    }

    /// The context block address of thread slot `t`, if registered.
    pub(crate) fn ctx_of(&self, t: usize) -> Option<Addr> {
        let raw = self.heap().peek(self.activity, t as u64);
        Addr::try_from_raw(raw).filter(|a| !a.is_null())
    }

    /// Unpublishes a thread slot (used when a thread leaves).
    pub(crate) fn deregister(&self, thread_id: usize) {
        self.heap().poke(self.activity, thread_id as u64, 0);
    }

    /// Current value of the global slow-path counter.
    pub fn slow_path_count(&self) -> u64 {
        self.heap().peek(self.slow_count, 0)
    }

    /// Builds a standalone [`Cpu`] for tests, examples, and doc tests that
    /// drive a thread without the full discrete-event simulator.
    pub fn test_cpu(&self, thread_id: usize) -> Cpu {
        let topo = Topology::haswell();
        Cpu::new(
            thread_id,
            HwContext::new(&topo, topo.place(thread_id)),
            Arc::new(CostModel::default()),
            Arc::new(ActivityBoard::new(topo.hw_contexts())),
            0x5eed + thread_id as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_simheap::HeapConfig;
    use st_simhtm::HtmConfig;

    fn runtime(n: usize) -> Arc<StRuntime> {
        let heap = Arc::new(Heap::new(HeapConfig {
            // Context blocks are dominated by the slow-path reference set;
            // size for a few of them.
            capacity_words: 1 << 18,
            ..HeapConfig::small()
        }));
        let engine = Arc::new(HtmEngine::new(heap, HtmConfig::default(), n));
        StRuntime::new(engine, StConfig::default(), n)
    }

    #[test]
    fn register_publishes_context() {
        let rt = runtime(2);
        assert!(rt.ctx_of(0).is_none());
        let th = rt.register_thread(0);
        let ctx = rt.ctx_of(0).expect("registered");
        assert_eq!(ctx, th.ctx_addr());
        assert!(rt.ctx_of(1).is_none());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_registration_panics() {
        let rt = runtime(2);
        let _a = rt.register_thread(0);
        let _b = rt.register_thread(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let rt = runtime(1);
        let _ = rt.register_thread(1);
    }

    #[test]
    fn deregister_unpublishes() {
        let rt = runtime(1);
        let _th = rt.register_thread(0);
        rt.deregister(0);
        assert!(rt.ctx_of(0).is_none());
    }

    #[test]
    fn slow_count_starts_at_zero() {
        let rt = runtime(1);
        assert_eq!(rt.slow_path_count(), 0);
    }
}
