//! Randomized property tests for the StackTrack core: predictor bounds and
//! convergence, and executor robustness under arbitrary abort patterns.
//!
//! Driven by the simulator's own deterministic `Pcg32` (seeded per case)
//! instead of an external property-testing crate — the build must work with
//! no registry access, and explicit seeds make failures replayable by
//! construction.

use st_machine::rng::Pcg32;
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use stacktrack::predictor::SplitPredictor;
use stacktrack::{StConfig, StRuntime, Step};
use std::sync::Arc;

const CASES: u64 = 64;

/// Limits stay within [min, max] under any commit/abort sequence.
#[test]
fn predictor_limits_stay_bounded() {
    for case in 0..CASES {
        let mut rng = Pcg32::new_stream(0x9e37_79b9, case);
        let initial = 1 + rng.below(99) as u32;
        let span = 1 + rng.below(99) as u32;
        let (min, max) = (initial, initial + span);
        let mut p = SplitPredictor::new(initial, min, max, 5, 5);
        let events = rng.below(500);
        for _ in 0..events {
            let op = rng.below(4) as usize;
            let split = rng.below(8) as usize;
            if rng.chance(0.5) {
                p.on_abort(op, split);
            } else {
                p.on_commit(op, split);
            }
            let l = p.limit(op, split);
            assert!(
                l >= min && l <= max,
                "case {case}: limit {l} outside [{min}, {max}]"
            );
        }
    }
}

/// A segment that deterministically aborts above a threshold and commits at
/// or below it converges to the threshold.
#[test]
fn predictor_converges_to_the_capacity() {
    for case in 0..CASES {
        let mut rng = Pcg32::new_stream(0xc0ff_ee11, case);
        let threshold = 2 + rng.below(38) as u32;
        let mut p = SplitPredictor::new(50, 1, 200, 5, 5);
        for _ in 0..6000 {
            if p.limit(0, 0) > threshold {
                p.on_abort(0, 0);
            } else {
                p.on_commit(0, 0);
            }
        }
        let l = p.limit(0, 0);
        assert!(
            l >= threshold.saturating_sub(1) && l <= threshold + 1,
            "case {case}: converged to {l}, expected ~{threshold}"
        );
    }
}

/// Operations complete and reclaim correctly under any spurious-abort
/// probability (the executor's retry/fallback machinery must never wedge
/// or leak).
#[test]
fn executor_survives_arbitrary_abort_rates() {
    for case in 0..CASES {
        let mut rng = Pcg32::new_stream(0x5eed_5eed, case);
        let abort_prob = rng.unit_f64() * 0.9;
        let ops = 1 + rng.below(19) as usize;

        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 18,
            ..HeapConfig::default()
        }));
        let engine = Arc::new(HtmEngine::new(
            heap.clone(),
            HtmConfig {
                spurious_abort_per_access: abort_prob,
                ..HtmConfig::default()
            },
            1,
        ));
        let rt = StRuntime::new(
            engine,
            StConfig {
                initial_split_length: 4,
                ..StConfig::default()
            },
            1,
        );
        let mut th = rt.register_thread(0);
        let mut cpu = rt.test_cpu(0);
        let before = heap.stats().alloc.live_objects;

        for i in 0..ops {
            let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
                let n = m.alloc(cpu, 2);
                m.store(cpu, n, 0, i as u64)?;
                m.set_local(cpu, 0, n.raw());
                m.retire_unlinked(cpu, n)?;
                Ok(Step::Done(1))
            });
            assert_eq!(v, 1, "case {case}");
        }
        th.force_full_scan(&mut cpu);
        assert_eq!(
            heap.stats().alloc.live_objects,
            before,
            "case {case}: no leak"
        );
        assert_eq!(rt.slow_path_count(), 0, "case {case}: slow counter");
    }
}
