//! Property tests for the StackTrack core: predictor bounds and
//! convergence, and executor robustness under arbitrary abort patterns.

use proptest::prelude::*;
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use stacktrack::predictor::SplitPredictor;
use stacktrack::{StConfig, StRuntime, Step};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Limits stay within [min, max] under any commit/abort sequence.
    #[test]
    fn predictor_limits_stay_bounded(
        initial in 1u32..100,
        span in 1u32..100,
        events in prop::collection::vec((0usize..4, 0usize..8, any::<bool>()), 0..500),
    ) {
        let min = initial;
        let max = initial + span;
        let mut p = SplitPredictor::new(initial, min, max, 5, 5);
        for (op, split, abort) in events {
            if abort {
                p.on_abort(op, split);
            } else {
                p.on_commit(op, split);
            }
            let l = p.limit(op, split);
            prop_assert!(l >= min && l <= max, "limit {l} outside [{min}, {max}]");
        }
    }

    /// A segment that deterministically aborts above a threshold and
    /// commits at or below it converges to the threshold.
    #[test]
    fn predictor_converges_to_the_capacity(threshold in 2u32..40) {
        let mut p = SplitPredictor::new(50, 1, 200, 5, 5);
        for _ in 0..6000 {
            if p.limit(0, 0) > threshold {
                p.on_abort(0, 0);
            } else {
                p.on_commit(0, 0);
            }
        }
        let l = p.limit(0, 0);
        prop_assert!(
            l >= threshold.saturating_sub(1) && l <= threshold + 1,
            "converged to {l}, expected ~{threshold}"
        );
    }

    /// Operations complete and reclaim correctly under any spurious-abort
    /// probability (the executor's retry/fallback machinery must never
    /// wedge or leak).
    #[test]
    fn executor_survives_arbitrary_abort_rates(
        abort_prob in 0.0f64..0.9,
        ops in 1usize..20,
    ) {
        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 18,
            ..HeapConfig::default()
        }));
        let engine = Arc::new(HtmEngine::new(
            heap.clone(),
            HtmConfig {
                spurious_abort_per_access: abort_prob,
                ..HtmConfig::default()
            },
            1,
        ));
        let rt = StRuntime::new(
            engine,
            StConfig {
                initial_split_length: 4,
                ..StConfig::default()
            },
            1,
        );
        let mut th = rt.register_thread(0);
        let mut cpu = rt.test_cpu(0);
        let before = heap.stats().alloc.live_objects;

        for i in 0..ops {
            let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
                let n = m.alloc(cpu, 2);
                m.store(cpu, n, 0, i as u64)?;
                m.set_local(cpu, 0, n.raw());
                m.retire(cpu, n)?;
                Ok(Step::Done(1))
            });
            prop_assert_eq!(v, 1);
        }
        th.force_full_scan(&mut cpu);
        prop_assert_eq!(heap.stats().alloc.live_objects, before, "no leak");
        prop_assert_eq!(rt.slow_path_count(), 0, "slow counter balanced");
    }
}
