//! End-to-end tests of the StackTrack executor: split engine, FREE/scan,
//! slow path, and the safety protocols of paper sections 5.2-5.6.

use st_simheap::{Addr, Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use stacktrack::{ScanMode, StConfig, StRuntime, Step};
use std::sync::Arc;

fn runtime_with(config: StConfig, threads: usize) -> Arc<StRuntime> {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 18,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap, HtmConfig::default(), threads));
    StRuntime::new(engine, config, threads)
}

fn runtime(threads: usize) -> Arc<StRuntime> {
    runtime_with(StConfig::default(), threads)
}

#[test]
fn locals_survive_across_blocks_and_commits() {
    let rt = runtime_with(
        StConfig {
            initial_split_length: 1, // commit after every basic block
            ..StConfig::default()
        },
        1,
    );
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);

    let v = th.run_op(&mut cpu, 0, 2, &mut |m, cpu| {
        let i = m.get_local(cpu, 0);
        if i < 10 {
            let acc = m.get_local(cpu, 1);
            m.set_local(cpu, 0, i + 1);
            m.set_local(cpu, 1, acc + i);
            return Ok(Step::Continue);
        }
        let acc = m.get_local(cpu, 1);
        Ok(Step::Done(acc))
    });
    assert_eq!(v, 45, "0+1+...+9 accumulated across segment commits");
    assert!(th.stats().committed_segments >= 10);
    assert_eq!(th.stats().ops, 1);
}

#[test]
fn segments_split_at_the_predicted_limit() {
    let rt = runtime_with(
        StConfig {
            initial_split_length: 5,
            ..StConfig::default()
        },
        1,
    );
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);

    th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
        let i = m.get_local(cpu, 0);
        if i < 20 {
            m.set_local(cpu, 0, i + 1);
            return Ok(Step::Continue);
        }
        Ok(Step::Done(0))
    });
    // 21 blocks at limit 5 -> 4 full segments + the final one.
    assert_eq!(th.stats().committed_segments, 5);
    assert!((th.stats().avg_segment_length() - 21.0 / 5.0).abs() < 0.01);
}

#[test]
fn retire_frees_unreferenced_nodes() {
    let rt = runtime(1);
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);
    let heap = rt.heap().clone();

    let mut nodes = Vec::new();
    for _ in 0..5 {
        let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
            let n = m.alloc(cpu, 2);
            m.store(cpu, n, 0, 7)?;
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(n.raw()))
        });
        nodes.push(Addr::from_raw(v));
    }
    // max_free defaults to 10: nothing scanned yet.
    assert_eq!(th.stats().scans, 0);
    th.force_full_scan(&mut cpu);
    assert_eq!(th.stats().scans, 1);
    for n in nodes {
        assert!(!heap.is_live(n), "retired node {n:?} must be freed");
        assert!(heap.is_poisoned(n, 0));
    }
    assert_eq!(th.free_set_len(), 0);
}

#[test]
fn scan_triggers_automatically_past_max_free() {
    let rt = runtime_with(
        StConfig {
            max_free: 3,
            ..StConfig::default()
        },
        1,
    );
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);

    for _ in 0..8 {
        th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
            let n = m.alloc(cpu, 2);
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(0))
        });
        while th.idle_work_pending() {
            th.step_idle(&mut cpu);
        }
    }
    assert!(th.stats().scans >= 1, "scan must fire past max_free");
    assert!(th.stats().frees_completed >= 4);
}

#[test]
fn committed_stack_reference_blocks_reclamation() {
    let rt = runtime_with(
        StConfig {
            initial_split_length: 1, // B commits its slot immediately
            max_free: 0,
            ..StConfig::default()
        },
        2,
    );
    let mut a = rt.register_thread(0);
    let mut b = rt.register_thread(1);
    let mut cpu_a = rt.test_cpu(0);
    let mut cpu_b = rt.test_cpu(1);
    let heap = rt.heap().clone();

    // A shared cell A will unlink from; X is the node to reclaim.
    let cell = heap.alloc_untimed(1).unwrap();
    let x = heap.alloc_untimed(2).unwrap();
    heap.poke(cell, 0, x.raw());

    // B: loads X into a shadow slot and stays inside its operation.
    b.begin_op(&mut cpu_b, 0, 1);
    let b_body = |hold: bool| {
        move |m: &mut dyn stacktrack::OpMem, cpu: &mut st_machine::Cpu| {
            if m.get_local(cpu, 0) == 0 && hold {
                let p = m.load_ptr(cpu, cell, 0, 0)?;
                m.set_local(cpu, 0, p);
            }
            if hold {
                Ok(Step::Continue)
            } else {
                Ok(Step::Done(0))
            }
        }
    };
    // Step B until its slot is committed (limit 1: each block commits).
    for _ in 0..4 {
        let mut body = b_body(true);
        assert!(b.step_op(&mut cpu_b, &mut body).is_none());
    }
    assert_eq!(
        heap.peek(b.ctx_addr(), stacktrack::layout::OFF_STACK),
        x.raw(),
        "B's committed shadow slot must hold X"
    );

    // A: unlink X and retire it; the scan must see B's reference.
    let done = a.run_op(&mut cpu_a, 1, 1, &mut |m, cpu| {
        let cur = m.load(cpu, cell, 0)?;
        if cur == x.raw() {
            m.cas(cpu, cell, 0, cur, 0)?.expect("unlink");
            m.retire_unlinked(cpu, Addr::from_raw(cur))?;
        }
        Ok(Step::Done(1))
    });
    assert_eq!(done, 1);
    while a.idle_work_pending() {
        a.step_idle(&mut cpu_a);
    }
    assert!(heap.is_live(x), "X is still referenced by B");
    assert_eq!(a.stats().survivors, 1);
    assert_eq!(a.free_set_len(), 1);

    // B finishes its operation; the reference disappears.
    loop {
        let mut body = b_body(false);
        if b.step_op(&mut cpu_b, &mut body).is_some() {
            break;
        }
    }
    a.force_full_scan(&mut cpu_a);
    assert!(!heap.is_live(x), "no references remain; X must be freed");
}

#[test]
fn in_flight_transactional_reader_is_doomed_not_corrupted() {
    // The paper's central safety scenario (section 5.6, fast-path case):
    // a reader holds X only inside an uncommitted segment; the reclaimer
    // cannot see the reference, frees X, and the reader's segment must
    // abort instead of observing freed memory.
    let rt = runtime_with(
        StConfig {
            max_free: 0,
            ..StConfig::default()
        },
        2,
    );
    let mut reader = rt.register_thread(0);
    let mut reclaimer = rt.register_thread(1);
    let mut cpu_r = rt.test_cpu(0);
    let mut cpu_f = rt.test_cpu(1);
    let heap = rt.heap().clone();

    let cell = heap.alloc_untimed(1).unwrap();
    let x = heap.alloc_untimed(2).unwrap();
    heap.poke(x, 0, 1234);
    heap.poke(cell, 0, x.raw());

    // Reader: one uncommitted segment that has read X.
    reader.begin_op(&mut cpu_r, 0, 1);
    let mut reader_body = |m: &mut dyn stacktrack::OpMem, cpu: &mut st_machine::Cpu| {
        let p = m.load(cpu, cell, 0)?;
        if p != 0 {
            let val = m.load(cpu, Addr::from_raw(p), 0)?;
            assert_ne!(val, st_simheap::heap::POISON, "zombie read of poison");
            m.set_local(cpu, 0, p);
            return Ok(Step::Continue);
        }
        Ok(Step::Done(0))
    };
    assert!(reader.step_op(&mut cpu_r, &mut reader_body).is_none());

    // Reclaimer: unlink + retire + scan; the reader's stack shows nothing.
    reclaimer.run_op(&mut cpu_f, 0, 1, &mut |m, cpu| {
        let cur = m.load(cpu, cell, 0)?;
        if cur != 0 {
            m.cas(cpu, cell, 0, cur, 0)?.expect("unlink");
            m.retire_unlinked(cpu, Addr::from_raw(cur))?;
        }
        Ok(Step::Done(0))
    });
    while reclaimer.idle_work_pending() {
        reclaimer.step_idle(&mut cpu_f);
    }
    assert!(!heap.is_live(x), "invisible reader cannot block the free");

    // Reader continues: its segment must abort (version bump), restart
    // from committed state, observe the empty cell, and finish cleanly.
    let result = loop {
        if let Some(v) = reader.step_op(&mut cpu_r, &mut reader_body) {
            break v;
        }
    };
    assert_eq!(result, 0);
    assert!(
        reader.stats().segment_aborts >= 1,
        "the doomed segment must have aborted"
    );
}

#[test]
fn forced_slow_path_completes_and_restores_counter() {
    let rt = runtime_with(
        StConfig {
            forced_slow_prob: 1.0,
            ..StConfig::default()
        },
        1,
    );
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);
    let heap = rt.heap().clone();
    let cell = heap.alloc_untimed(1).unwrap();

    let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
        let i = m.get_local(cpu, 0);
        if i < 5 {
            m.set_local(cpu, 0, i + 1);
            m.store(cpu, cell, 0, i)?;
            return Ok(Step::Continue);
        }
        m.load(cpu, cell, 0).map(Step::Done)
    });
    assert_eq!(v, 4);
    assert_eq!(th.stats().forced_slow_ops, 1);
    assert_eq!(th.stats().slow_ops, 1);
    assert_eq!(rt.slow_path_count(), 0, "counter must return to zero");
    assert_eq!(th.stats().committed_segments, 0, "no HTM on the slow path");
}

#[test]
fn abandon_mid_slow_path_restores_the_counter() {
    // Teardown can catch a thread inside the software slow path; the
    // abandon must pair enter_slow's increment of the global counter, or
    // every future scan pays the slow-path-active penalty forever.
    let rt = runtime_with(
        StConfig {
            forced_slow_prob: 1.0,
            ..StConfig::default()
        },
        1,
    );
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);
    let heap = rt.heap().clone();
    let cell = heap.alloc_untimed(1).unwrap();

    th.begin_op(&mut cpu, 0, 1);
    let mut body = |m: &mut dyn stacktrack::OpMem, cpu: &mut st_machine::Cpu| {
        let i = m.get_local(cpu, 0);
        m.set_local(cpu, 0, i + 1);
        m.store(cpu, cell, 0, i)?;
        Ok(Step::Continue) // never finishes on its own
    };
    for _ in 0..4 {
        assert!(th.step_op(&mut cpu, &mut body).is_none());
    }
    assert_eq!(rt.slow_path_count(), 1, "mid-op: the slow path is active");

    th.abandon_op(&mut cpu);
    assert_eq!(
        rt.slow_path_count(),
        0,
        "abandon mid-slow-path must decrement the global counter"
    );

    // The thread stays usable after the abandon.
    let v = th.run_op(&mut cpu, 1, 1, &mut |m, cpu| {
        m.load(cpu, cell, 0).map(Step::Done)
    });
    assert_eq!(v, 3, "the abandoned op's last committed store is visible");
    assert_eq!(rt.slow_path_count(), 0);
}

#[test]
fn hopeless_segments_fall_back_to_the_slow_path() {
    // Every transactional access aborts spuriously: limits shrink to 1,
    // then the fallback threshold trips and the op finishes in software.
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 18,
        ..HeapConfig::small()
    }));
    let engine = Arc::new(HtmEngine::new(
        heap,
        HtmConfig {
            spurious_abort_per_access: 1.0,
            ..HtmConfig::default()
        },
        1,
    ));
    let rt = StRuntime::new(
        engine,
        StConfig {
            initial_split_length: 2,
            abort_streak: 1,
            slow_fail_threshold: 2,
            ..StConfig::default()
        },
        1,
    );
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);
    let cell = rt.heap().alloc_untimed(1).unwrap();

    let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
        m.store(cpu, cell, 0, 9)?;
        m.load(cpu, cell, 0).map(Step::Done)
    });
    assert_eq!(v, 9);
    assert_eq!(th.stats().slow_ops, 1);
    assert!(th.stats().segment_aborts >= 2);
    assert_eq!(rt.slow_path_count(), 0);
}

#[test]
fn slow_path_references_block_reclamation() {
    // A slow-path thread's reference set must be honored by scanners.
    let rt = runtime_with(
        StConfig {
            forced_slow_prob: 1.0,
            max_free: 0,
            ..StConfig::default()
        },
        2,
    );
    let mut slow = rt.register_thread(0);
    let mut fast = rt.register_thread(1);
    let mut cpu_s = rt.test_cpu(0);
    let mut cpu_f = rt.test_cpu(1);
    let heap = rt.heap().clone();

    let cell = heap.alloc_untimed(1).unwrap();
    let x = heap.alloc_untimed(2).unwrap();
    heap.poke(cell, 0, x.raw());

    // Slow thread reads X (value lands in its reference set) and parks.
    slow.begin_op(&mut cpu_s, 0, 1);
    let mut slow_body = |m: &mut dyn stacktrack::OpMem, cpu: &mut st_machine::Cpu| {
        if m.get_local(cpu, 0) == 0 {
            let p = m.load_ptr(cpu, cell, 0, 0)?;
            m.set_local(cpu, 0, p);
        }
        Ok(Step::Continue)
    };
    assert!(slow.step_op(&mut cpu_s, &mut slow_body).is_none());
    assert_eq!(rt.slow_path_count(), 1);

    // NOTE: on the slow path the slot write is immediate, so the stack
    // already shows X; to isolate the *reference set* check, clear the
    // visible slot and keep only the refset entry.
    heap.poke(slow.ctx_addr(), stacktrack::layout::OFF_STACK, 0);

    // The reclaimer unlinks and scans: the refset must keep X alive.
    fast.run_op(&mut cpu_f, 0, 1, &mut |m, cpu| {
        let cur = m.load(cpu, cell, 0)?;
        if cur != 0 {
            m.cas(cpu, cell, 0, cur, 0)?.expect("unlink");
            m.retire_unlinked(cpu, Addr::from_raw(cur))?;
        }
        Ok(Step::Done(0))
    });
    while fast.idle_work_pending() {
        fast.step_idle(&mut cpu_f);
    }
    assert!(heap.is_live(x), "slow-path reference set must protect X");
}

#[test]
fn hashed_scan_matches_linear_semantics() {
    for mode in [ScanMode::Linear, ScanMode::Hashed] {
        let rt = runtime_with(
            StConfig {
                scan_mode: mode,
                ..StConfig::default()
            },
            1,
        );
        let mut th = rt.register_thread(0);
        let mut cpu = rt.test_cpu(0);
        let heap = rt.heap().clone();

        let mut nodes = Vec::new();
        for _ in 0..6 {
            let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
                let n = m.alloc(cpu, 2);
                m.retire_unlinked(cpu, n)?;
                Ok(Step::Done(n.raw()))
            });
            nodes.push(Addr::from_raw(v));
        }
        th.force_full_scan(&mut cpu);
        for n in &nodes {
            assert!(!heap.is_live(*n), "{mode:?}: {n:?} must be freed");
        }
    }
}

#[test]
fn interior_pointers_resolved_when_enabled() {
    for (interior, expect_live) in [(true, true), (false, false)] {
        let rt = runtime_with(
            StConfig {
                interior_pointers: interior,
                initial_split_length: 1,
                max_free: 0,
                ..StConfig::default()
            },
            2,
        );
        let mut holder = rt.register_thread(0);
        let mut reclaimer = rt.register_thread(1);
        let mut cpu_h = rt.test_cpu(0);
        let mut cpu_r = rt.test_cpu(1);
        let heap = rt.heap().clone();

        let cell = heap.alloc_untimed(1).unwrap();
        let x = heap.alloc_untimed(8).unwrap();
        heap.poke(cell, 0, x.raw());

        // Holder commits only an interior pointer (X + 3 words). A plain
        // `load` keeps the base address out of the register file, so the
        // range query is the only way the scan can connect slot and object.
        holder.begin_op(&mut cpu_h, 0, 1);
        let mut hold_body = |m: &mut dyn stacktrack::OpMem, cpu: &mut st_machine::Cpu| {
            if m.get_local(cpu, 0) == 0 {
                let p = m.load(cpu, cell, 0)?;
                m.set_local(cpu, 0, Addr::from_raw(p).offset(3).raw());
            }
            Ok(Step::Continue)
        };
        for _ in 0..3 {
            assert!(holder.step_op(&mut cpu_h, &mut hold_body).is_none());
        }

        reclaimer.run_op(&mut cpu_r, 0, 1, &mut |m, cpu| {
            let cur = m.load(cpu, cell, 0)?;
            if cur != 0 {
                m.cas(cpu, cell, 0, cur, 0)?.expect("unlink");
                m.retire_unlinked(cpu, Addr::from_raw(cur))?;
            }
            Ok(Step::Done(0))
        });
        while reclaimer.idle_work_pending() {
            reclaimer.step_idle(&mut cpu_r);
        }
        assert_eq!(
            heap.is_live(x),
            expect_live,
            "interior={interior}: range query must decide"
        );
    }
}

#[test]
fn register_file_exposure_protects_transient_pointers() {
    // A pointer held only via load_ptr (never set_local) is covered by the
    // exposed register file after the segment commits.
    let rt = runtime_with(
        StConfig {
            initial_split_length: 1,
            max_free: 0,
            ..StConfig::default()
        },
        2,
    );
    let mut holder = rt.register_thread(0);
    let mut reclaimer = rt.register_thread(1);
    let mut cpu_h = rt.test_cpu(0);
    let mut cpu_r = rt.test_cpu(1);
    let heap = rt.heap().clone();

    let cell = heap.alloc_untimed(1).unwrap();
    let x = heap.alloc_untimed(2).unwrap();
    heap.poke(cell, 0, x.raw());

    holder.begin_op(&mut cpu_h, 0, 1);
    let mut hold_body = |m: &mut dyn stacktrack::OpMem, cpu: &mut st_machine::Cpu| {
        let _ = m.load_ptr(cpu, cell, 0, 0)?; // register file only
        Ok(Step::Continue)
    };
    // Two steps: the second segment's commit exposes the register file.
    for _ in 0..3 {
        assert!(holder.step_op(&mut cpu_h, &mut hold_body).is_none());
    }

    reclaimer.run_op(&mut cpu_r, 0, 1, &mut |m, cpu| {
        let cur = m.load(cpu, cell, 0)?;
        if cur != 0 {
            m.cas(cpu, cell, 0, cur, 0)?.expect("unlink");
            m.retire_unlinked(cpu, Addr::from_raw(cur))?;
        }
        Ok(Step::Done(0))
    });
    while reclaimer.idle_work_pending() {
        reclaimer.step_idle(&mut cpu_r);
    }
    assert!(heap.is_live(x), "register-file reference must keep X alive");
}

#[test]
fn scan_restarts_when_inspected_thread_commits() {
    // Algorithm 1's consistency protocol: a segment commit by the
    // inspected thread mid-inspection forces a rescan of that thread.
    let rt = runtime_with(
        StConfig {
            initial_split_length: 1,
            max_free: 0,
            scan_chunk_words: 4, // multi-chunk inspections
            ..StConfig::default()
        },
        2,
    );
    let mut busy = rt.register_thread(0);
    let mut reclaimer = rt.register_thread(1);
    let mut cpu_b = rt.test_cpu(0);
    let mut cpu_r = rt.test_cpu(1);
    let _heap = rt.heap().clone();

    // Busy thread: wide frame, commits a segment on every step.
    busy.begin_op(&mut cpu_b, 0, 40);
    let mut busy_body = |m: &mut dyn stacktrack::OpMem, cpu: &mut st_machine::Cpu| {
        let i = m.get_local(cpu, 0);
        m.set_local(cpu, 0, i + 1);
        Ok(Step::Continue)
    };
    busy.step_op(&mut cpu_b, &mut busy_body);

    // Reclaimer: retire a node, then interleave its scan with the busy
    // thread's commits.
    reclaimer.run_op(&mut cpu_r, 0, 1, &mut |m, cpu| {
        let n = m.alloc(cpu, 2);
        m.retire_unlinked(cpu, n)?;
        Ok(Step::Done(0))
    });
    // Interleave for a while (each busy step commits a segment, tearing
    // the inspection), then let the scan finish alone — mirroring the
    // paper's progress argument: a retry implies the inspected thread
    // committed, and the scan completes once that thread quiets down.
    for _ in 0..8 {
        if !reclaimer.idle_work_pending() {
            break;
        }
        reclaimer.step_idle(&mut cpu_r);
        busy.step_op(&mut cpu_b, &mut busy_body);
    }
    while reclaimer.idle_work_pending() {
        reclaimer.step_idle(&mut cpu_r);
    }
    assert!(
        reclaimer.stats().scan_retries > 0,
        "interleaved commits must trigger inspection restarts"
    );
}

#[test]
fn user_defined_regions_suppress_splits() {
    // Paper section 5.5: a split is never performed inside a
    // programmer-defined transactional region, and the register file is
    // exposed at the region's end.
    let rt = runtime_with(
        StConfig {
            initial_split_length: 1, // would otherwise commit every block
            ..StConfig::default()
        },
        1,
    );
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);
    let heap = rt.heap().clone();
    let cell = heap.alloc_untimed(1).unwrap();

    let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
        let i = m.get_local(cpu, 0);
        match i {
            0 => m.user_tx_begin(cpu),
            1..=5 => {
                // Inside the region: these blocks must share one segment.
                m.store(cpu, cell, 0, i)?;
            }
            6 => m.user_tx_end(cpu)?,
            _ => {
                let v = m.load(cpu, cell, 0)?;
                return Ok(Step::Done(v));
            }
        }
        m.set_local(cpu, 0, i + 1);
        Ok(Step::Continue)
    });
    assert_eq!(v, 5);
    // Blocks 0..=6 ran in one segment (the region held it open); at limit
    // 1, only the blocks after the region each get their own segment.
    let st = th.stats();
    assert!(
        st.committed_segments <= 3,
        "region must suppress splits (got {} segments)",
        st.committed_segments
    );
    assert_eq!(st.ops, 1);
}

#[test]
fn user_regions_reset_on_abort_and_slow_path() {
    // A region interrupted by an abort re-executes; the slow path treats
    // regions as hints. Force the slow path and run the same body.
    let rt = runtime_with(
        StConfig {
            forced_slow_prob: 1.0,
            ..StConfig::default()
        },
        1,
    );
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);
    let heap = rt.heap().clone();
    let cell = heap.alloc_untimed(1).unwrap();

    let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
        let i = m.get_local(cpu, 0);
        if i == 0 {
            m.user_tx_begin(cpu);
            m.store(cpu, cell, 0, 7)?;
            m.user_tx_end(cpu)?;
            m.set_local(cpu, 0, 1);
            return Ok(Step::Continue);
        }
        m.load(cpu, cell, 0).map(Step::Done)
    });
    assert_eq!(v, 7);
    assert_eq!(th.stats().slow_ops, 1);
}

#[test]
fn force_split_creates_a_segment_boundary() {
    // Section 5.4's unsupported-instruction pattern: commit, do the
    // non-speculative thing, start a new transaction.
    let rt = runtime_with(
        StConfig {
            initial_split_length: 100, // far above the op length
            ..StConfig::default()
        },
        1,
    );
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);

    th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
        let i = m.get_local(cpu, 0);
        m.set_local(cpu, 0, i + 1);
        match i {
            0..=3 => Ok(Step::Continue),
            4 => {
                m.force_split(cpu); // boundary after this block
                Ok(Step::Continue)
            }
            5..=8 => Ok(Step::Continue),
            _ => Ok(Step::Done(0)),
        }
    });
    // Without the hint this op would be one segment; the hint makes two.
    assert_eq!(th.stats().committed_segments, 2);
}
