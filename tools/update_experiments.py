#!/usr/bin/env python3
"""Refreshes the measured tables in EXPERIMENTS.md from results/*.json.

Keeps the prose; replaces only table bodies (matched by their header
rows). Run after `st-bench all --ms 10 --out results`,
`st-bench fig3-fig4 --ms 10 --warmup 60 --out results/warmed` and
`st-bench robustness --out results`. Any of those can take `--jobs N`
to fan configurations across worker threads — the artifacts this tool
reads are byte-identical either way (see docs/PERF.md), so parallel
regeneration never perturbs the refreshed tables.

Scheme and structure names are never re-spelled here: every column label
and row key comes from the snapshots themselves, which carry the Rust
`Display` names (`Scheme`/`StructureKind` in `st-reclaim`/`st-bench`).
"""

import json
import sys


SCHEMA_VERSION = 2


def load(name, base="results"):
    rows = []
    with open(f"{base}/{name}.json") as fh:
        for line in fh:
            rows.append(json.loads(line))
    return rows


def load_metrics(name, base="results"):
    """Loads a full observability snapshot (see docs/METRICS.md) and
    returns its run list: dicts with scheme/structure/threads/metrics."""
    with open(f"{base}/{name}.metrics.json") as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == SCHEMA_VERSION, (
        f"{name}.metrics.json is schema v{doc['schema_version']}, "
        f"this tool expects v{SCHEMA_VERSION}"
    )
    return doc["runs"]


def ops_fmt(v):
    if v >= 1e6:
        return f"{v / 1e6:.2f}M"
    if v >= 1e3:
        return f"{v / 1e3:.1f}K"
    return f"{v:.0f}"


def by(rows, **kv):
    out = [r for r in rows if all(r[k] == v for k, v in kv.items())]
    assert out, f"no row for {kv}"
    assert len(out) == 1, f"ambiguous {kv}"
    return out[0]


def replace_table(text, header, new_rows):
    """Replaces the body of the markdown table whose header row is exactly
    `header` (include the trailing newline to avoid prefix collisions)."""
    assert header.endswith("\n"), "header must include its newline"
    i = text.index(header)
    after_header = i + len(header)
    sep_end = text.index("\n", after_header) + 1  # the |---| line
    j = sep_end
    while j < len(text) and text[j] == "|":
        j = text.index("\n", j) + 1
    body = "".join(new_rows)
    return text[:sep_end] + body + text[j:]


def main():
    text = open("EXPERIMENTS.md").read()

    # Figure 1a (the paper's five schemes plus the beyond-the-paper pair).
    rows = load("fig1_list")
    new = []
    for t in [1, 2, 4, 8, 9, 12, 16]:
        cells = [str(t)] + [
            ops_fmt(by(rows, threads=t, scheme=s)["ops_per_sec"])
            for s in ["Original", "Hazards", "Epoch", "StackTrack", "DTA", "NBR", "Hyaline"]
        ]
        new.append("| " + " | ".join(cells) + " |\n")
    text = replace_table(
        text,
        "| threads | Original | Hazards | Epoch | StackTrack | DTA | NBR | Hyaline |\n",
        new,
    )

    # Figures 1b, 2a, 2b share the same header; patch in document order.
    specs = [
        ("fig1_skiplist", [1, 4, 8, 9, 16]),
        ("fig2_queue", [1, 2, 3, 8, 9, 16]),
        ("fig2_hash", [1, 4, 8, 9, 16]),
    ]
    header4 = "| threads | Original | Hazards | Epoch | StackTrack | NBR | Hyaline |\n"
    pos = 0
    for name, tlist in specs:
        rows = load(name)
        new = []
        for t in tlist:
            cells = [str(t)] + [
                ops_fmt(by(rows, threads=t, scheme=s)["ops_per_sec"])
                for s in ["Original", "Hazards", "Epoch", "StackTrack", "NBR", "Hyaline"]
            ]
            new.append("| " + " | ".join(cells) + " |\n")
        idx = text.index(header4, pos)
        chunk = replace_table(text[idx:], header4, new)
        text = text[:idx] + chunk
        pos = idx + len(header4)

    # Figure 3 (warmed).
    rows = load("fig3_fig4", base="results/warmed")
    new = []
    for t in [1, 4, 5, 6, 8, 16]:
        r = by(rows, threads=t)
        segs = max(r["tx_committed"], 1)
        new.append(
            f"| {t} | {r['aborts_conflict']:,} | {r['aborts_capacity']:,} "
            f"| {r['aborts_capacity'] / segs:.2f} |\n"
        )
    text = replace_table(text, "| threads | contention | capacity | capacity/segment |\n", new)

    # Abort-cause attribution (warmed, from the full metrics snapshot).
    runs = load_metrics("fig3_fig4", base="results/warmed")
    by_threads = {r["threads"]: r["metrics"] for r in runs}
    new = []
    for t in [1, 4, 8, 16]:
        m = by_threads[t]
        cells = [str(t)] + [
            f"{m[f'st.aborts.{cause}']:,}"
            for cause in ["conflict", "capacity", "explicit", "spurious", "preempted"]
        ]
        new.append("| " + " | ".join(cells) + " |\n")
    text = replace_table(
        text,
        "| threads | conflict | capacity | explicit | spurious | preempted |\n",
        new,
    )

    # Figure 4 (warmed).
    new = []
    for t in [1, 4, 6, 8, 16]:
        r = by(rows, threads=t)
        new.append(f"| {t} | {r['avg_splits_per_op']:.1f} | {r['avg_split_length']:.1f} |\n")
    text = replace_table(text, "| threads | avg splits/op | avg split length |\n", new)

    # Figure 5: relative throughputs. Rows come in groups of 4 per thread
    # count (fractions 0, 0.1, 0.5, 1.0 in order).
    rows = load("fig5_slowpath")
    groups = {}
    for i in range(0, len(rows), 4):
        g = rows[i : i + 4]
        assert len({r["threads"] for r in g}) == 1
        groups[g[0]["threads"]] = g
    new = []
    for t in [1, 4, 8, 14]:
        g = groups[t]
        base = g[0]["ops_per_sec"]
        rel = [100.0 * r["ops_per_sec"] / base for r in g[1:]]
        new.append(f"| {t} | {rel[0]:.1f}% | {rel[1]:.1f}% | {rel[2]:.1f}% |\n")
    text = replace_table(text, "| threads | Slow-10 | Slow-50 | Slow-100 |\n", new)

    # Scan table: first 16 rows are F1, next 16 are F10 (driver order).
    rows = load("scan_overhead")
    f1 = {r["threads"]: r for r in rows[:16]}
    f10 = {r["threads"]: r for r in rows[16:]}
    new = []
    for t in [1, 4, 8, 16]:
        a, b = f1[t], f10[t]
        new.append(
            f"| {t} | {a['scan_penalty_pct']:.2f} | {b['scan_penalty_pct']:.2f} "
            f"| {b['avg_scan_depth']:.0f} | {b['scans']} | {b['scan_retries']} |\n"
        )
    text = replace_table(
        text,
        "| threads | F1 penalty % | F10 penalty % | F10 avg depth (words) | F10 #scans | retries (F10) |\n",
        new,
    )

    # Robustness: outstanding-garbage time-series under a mid-run stall.
    # Columns come from the snapshot's own run order (the schemes' Display
    # names), the sample grid from the garbage_ts keys it recorded.
    runs = load_metrics("robustness")
    n_samples = max(
        sum(1 for k in r["metrics"] if k.startswith("reclaim.garbage_ts.")) for r in runs
    )
    duration_ms = runs[0]["duration_ms"]
    header = "| t (ms) | " + " | ".join(r["scheme"] for r in runs) + " |\n"
    new = []
    for k in range(1, n_samples + 1):
        t_ms = duration_ms * k / n_samples
        cells = [f"{t_ms:.2f}"] + [
            str(r["metrics"][f"reclaim.garbage_ts.{k:02d}"]) for r in runs
        ]
        new.append("| " + " | ".join(cells) + " |\n")
    text = replace_table(text, header, new)

    # Beyond the paper: garbage bounds under the robustness stall — peak
    # and deadline backlog per scheme, from the same garbage_ts series.
    new = []
    for r in runs:
        ts = [r["metrics"][f"reclaim.garbage_ts.{k:02d}"] for k in range(1, n_samples + 1)]
        new.append(f"| {r['scheme']} | {max(ts)} | {ts[-1]} |\n")
    text = replace_table(
        text, "| scheme | peak backlog (nodes) | backlog at deadline |\n", new
    )

    # Beyond the paper: what each scheme pays at 8 threads on the list —
    # throughput, HTM abort classes, and the memory-ordering traffic.
    rows = load("fig1_list")
    new = []
    for s in ["Original", "Hazards", "Epoch", "StackTrack", "DTA", "NBR", "Hyaline"]:
        r = by(rows, threads=8, scheme=s)
        new.append(
            f"| {s} | {ops_fmt(r['ops_per_sec'])} | {r['aborts_conflict']:,} "
            f"| {r['aborts_capacity']:,} | {r['fences']:,} | {r['cas_ops']:,} "
            f"| {r['garbage']} |\n"
        )
    text = replace_table(
        text,
        "| scheme | ops/s (8T) | HTM conflict | HTM capacity | fences | CAS | garbage |\n",
        new,
    )

    # Predictor ablation: groups of 4 per thread (adaptive, f1, f10, f50).
    rows = load("ablation_predictor")
    groups = {}
    for i in range(0, len(rows), 4):
        g = rows[i : i + 4]
        groups[g[0]["threads"]] = g
    new = []
    for t in [1, 8, 16]:
        g = groups[t]
        cells = [str(t)] + [ops_fmt(r["ops_per_sec"]) for r in g]
        new.append("| " + " | ".join(cells) + " |\n")
    text = replace_table(text, "| threads | adaptive | fixed-1 | fixed-10 | fixed-50 |\n", new)

    open("EXPERIMENTS.md", "w").write(text)
    print("EXPERIMENTS.md refreshed")


if __name__ == "__main__":
    sys.exit(main())
