#!/bin/sh
# Hot-path allocation gate (docs/PERF.md, "hot-loop pass").
#
# The sweep's inner loops — simhtm commit/validate, the machine step loop,
# and the metrics record paths — must not allocate strings per event. This
# gate fails if `format!`, `String::from`, or `.to_string()` appear in the
# non-test portion of a gated module, unless the line carries an explicit
# `alloc-gate: allow` marker (reserved for one-time registration paths,
# never per-event code).
#
# Usage: tools/alloc_gate.sh   (from the repo root; exits nonzero on hits)

set -u

GATED="
crates/simhtm/src/engine.rs
crates/machine/src/sched.rs
crates/obs/src/registry.rs
crates/obs/src/intern.rs
"

status=0
for f in $GATED; do
    if [ ! -f "$f" ]; then
        echo "alloc-gate: missing gated file $f" >&2
        status=1
        continue
    fi
    # Strip everything from the test module down: allocation in tests is
    # fine, and test modules sit at the bottom of each file by convention.
    hits=$(sed '/#\[cfg(test)\]/,$d' "$f" \
        | grep -nE 'format!|String::from|\.to_string\(' \
        | grep -v 'alloc-gate: allow')
    if [ -n "$hits" ]; then
        echo "alloc-gate: per-event allocation in hot-path module $f:" >&2
        echo "$hits" | sed "s|^|  $f:|" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "alloc-gate: hot-path modules are allocation-clean"
fi
exit $status
