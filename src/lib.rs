//! Umbrella crate for the StackTrack (EuroSys 2014) reproduction.
//!
//! Re-exports the workspace crates under one root so that the examples and
//! integration tests in this repository (and downstream users who want the
//! whole stack) can depend on a single package:
//!
//! - [`machine`]: deterministic simulated multicore (virtual time, SMT,
//!   preemption).
//! - [`simheap`]: simulated word-addressable heap with poison-on-free and
//!   interior-pointer range queries.
//! - [`simhtm`]: TL2-style best-effort hardware-transactional-memory
//!   simulator with a conflict/capacity abort taxonomy.
//! - [`stacktrack`]: the paper's contribution — split-transactional
//!   execution with stack/register-scanning memory reclamation.
//! - [`reclaim`]: baseline reclamation schemes (epoch, hazard pointers,
//!   drop-the-anchor, reference counting) behind one interface.
//! - [`structures`]: lock-free list / skip list / queue / hash table
//!   written once against the scheme-neutral memory interface.

pub use st_machine as machine;
pub use st_reclaim as reclaim;
pub use st_simheap as simheap;
pub use st_simhtm as simhtm;
pub use st_structures as structures;
pub use stacktrack;
