//! Explore the best-effort HTM simulator: abort taxonomy, capacity
//! behaviour, and the SMT pressure that drives the paper's Figure 3.
//!
//! Three experiments on the raw engine (no StackTrack on top):
//!
//! 1. conflict aborts: two threads transact on the same line;
//! 2. capacity aborts vs transaction footprint, with the SMT sibling
//!    idle and then active (the halved-budget + eviction model);
//! 3. doomed readers: a non-transactional free kills in-flight readers.
//!
//! Run with: `cargo run --release --example htm_explorer`

use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{AbortCode, HtmConfig, HtmEngine};
use std::sync::Arc;

fn make_cpu(
    thread: usize,
    topo: &Topology,
    costs: &Arc<CostModel>,
    board: &Arc<ActivityBoard>,
) -> Cpu {
    Cpu::new(
        thread,
        HwContext::new(topo, topo.place(thread)),
        costs.clone(),
        board.clone(),
        0xACE + thread as u64,
    )
}

fn main() {
    let topo = Topology::haswell();
    let costs = Arc::new(CostModel::default());
    let board = Arc::new(ActivityBoard::new(topo.hw_contexts()));
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 20,
        ..HeapConfig::default()
    }));
    let engine = HtmEngine::new(heap.clone(), HtmConfig::default(), 8);

    // ---------------------------------------------------------------
    println!("1) conflict: reader vs committing writer on one line");
    let mut a = make_cpu(0, &topo, &costs, &board);
    let mut b = make_cpu(1, &topo, &costs, &board);
    let cell = heap.alloc_untimed(1).expect("cell");

    let mut reader = engine.begin(&mut a);
    engine.tx_read(&mut a, &mut reader, cell, 0).expect("read");
    let mut writer = engine.begin(&mut b);
    engine
        .tx_write(&mut b, &mut writer, cell, 0, 42)
        .expect("write");
    engine.commit(&mut b, &mut writer).expect("writer commits");
    // The reader must now fail: its snapshot is stale.
    let scratch = heap.alloc_untimed(1).expect("scratch");
    engine
        .tx_write(&mut a, &mut reader, scratch, 0, 1)
        .expect("buffered");
    let abort = engine.commit(&mut a, &mut reader).expect_err("doomed");
    println!("   reader abort: {:?}\n", abort.code());
    assert_eq!(abort.code(), AbortCode::Conflict);

    // ---------------------------------------------------------------
    println!("2) capacity aborts vs footprint (1000 transactions each)");
    println!("   lines   solo-abort%   smt-abort%");
    let array = heap.alloc_untimed(1 << 15).expect("array");
    for lines in [32u64, 96, 160, 224, 320] {
        let mut rates = Vec::new();
        for smt in [false, true] {
            let mut cpu = make_cpu(0, &topo, &costs, &board);
            let sibling = cpu.hw.sibling.expect("smt sibling");
            board.set_running(sibling, smt);
            board.set_footprint(sibling, if smt { 120 } else { 0 });
            let mut aborted = 0;
            for _ in 0..1000 {
                let mut tx = engine.begin(&mut cpu);
                let mut failed = false;
                for l in 0..lines {
                    if engine.tx_read(&mut cpu, &mut tx, array, l * 8).is_err() {
                        failed = true;
                        break;
                    }
                }
                if failed {
                    aborted += 1;
                } else {
                    engine.commit(&mut cpu, &mut tx).expect("commit");
                }
            }
            rates.push(aborted as f64 / 10.0);
            board.set_running(sibling, false);
        }
        println!("   {:>5}   {:>10.1}   {:>9.1}", lines, rates[0], rates[1]);
    }

    // ---------------------------------------------------------------
    println!("\n3) free_object dooms an in-flight transactional reader");
    let node = heap.alloc_untimed(4).expect("node");
    let mut r = make_cpu(2, &topo, &costs, &board);
    let mut f = make_cpu(3, &topo, &costs, &board);
    let mut tx = engine.begin(&mut r);
    engine.tx_read(&mut r, &mut tx, node, 0).expect("read node");
    engine.free_object(&mut f, node);
    let err = engine
        .tx_read(&mut r, &mut tx, node, 1)
        .expect_err("doomed");
    println!(
        "   reader sees {:?}; node live = {} (poisoned, recycled safely)",
        err.code(),
        heap.is_live(node)
    );
    assert_eq!(err.code(), AbortCode::Conflict);

    let totals = engine.total_stats();
    println!(
        "\nengine totals: {} begun, {} committed, {} conflict / {} capacity aborts",
        totals.begun, totals.committed, totals.aborts_conflict, totals.aborts_capacity
    );
}
