//! A multi-threaded key-index workload on the skip list, run on the
//! simulated multicore — the paper's Figure 1b scenario as an application.
//!
//! Eight "index server" threads (filling all hardware contexts of the
//! simulated 4-core x 2-SMT machine) serve a 90/10 read/update mix against
//! a shared skip-list index, each under StackTrack. The run reports
//! throughput, HTM behaviour, and reclamation statistics, then verifies
//! the index against a sequential oracle of the committed operations.
//!
//! Run with: `cargo run --release --example skiplist_store`

use st_machine::{Cpu, Pcg32, SimConfig, Simulator, StepOutcome, Worker};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use st_structures::skiplist::{self, SkipShape};
use stacktrack::{OpBody, StConfig, StRuntime, StThread};
use std::sync::Arc;

const THREADS: usize = 8;
const KEYSPACE: u64 = 50_000;
const INITIAL: u64 = 25_000;

/// One index-server thread.
struct IndexServer {
    th: StThread,
    shape: SkipShape,
    current: Option<Box<OpBody<'static>>>,
}

impl Worker for IndexServer {
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
        if self.th.idle_work_pending() {
            self.th.step_idle(cpu);
            return StepOutcome::Progress;
        }
        if self.current.is_none() {
            let roll = cpu.rng.below(100);
            let key = cpu.rng.below(KEYSPACE) + 1;
            let (op, body): (u32, Box<OpBody<'static>>) = if roll < 90 {
                (
                    skiplist::OP_CONTAINS,
                    Box::new(skiplist::contains_body(self.shape, key)),
                )
            } else if roll % 2 == 0 {
                (
                    skiplist::OP_INSERT,
                    Box::new(skiplist::insert_body(self.shape, key)),
                )
            } else {
                (
                    skiplist::OP_DELETE,
                    Box::new(skiplist::delete_body(self.shape, key)),
                )
            };
            self.th.begin_op(cpu, op, skiplist::SKIP_SLOTS);
            self.current = Some(body);
            return StepOutcome::Progress;
        }
        let body = self.current.as_mut().expect("active op");
        match self.th.step_op(cpu, body.as_mut()) {
            Some(_) => {
                self.current = None;
                StepOutcome::OpDone
            }
            None => StepOutcome::Progress,
        }
    }
}

fn main() {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 22,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), THREADS));
    let rt = StRuntime::new(engine.clone(), StConfig::default(), THREADS);

    // Build and pre-populate the index.
    let shape = SkipShape::new_untimed(&heap);
    let mut rng = Pcg32::new(2024);
    let mut loaded = 0;
    while loaded < INITIAL {
        if shape.insert_untimed(&heap, rng.below(KEYSPACE) + 1, &mut rng) {
            loaded += 1;
        }
    }

    // Run 5 virtual milliseconds on the simulated 8-way machine.
    let sim = Simulator::new(SimConfig::haswell_ms(5, 7));
    let workers: Vec<IndexServer> = (0..THREADS)
        .map(|t| IndexServer {
            th: rt.register_thread(t),
            shape,
            current: None,
        })
        .collect();
    let (report, mut workers) = sim.run(workers);

    println!(
        "index served {} operations in 5 virtual ms",
        report.total_ops()
    );
    println!("throughput: {:.2}M ops/s", report.ops_per_second() / 1e6);

    let htm = engine.total_stats();
    println!(
        "HTM: {} segments committed, {} conflict aborts, {} capacity aborts",
        htm.committed, htm.aborts_conflict, htm.aborts_capacity
    );

    // Drain deferred reclamation and verify structural soundness. The
    // deadline can land mid-operation (a preempted segment restarts), so
    // finish any in-flight operation before the teardown scan.
    let mut garbage = 0;
    for (t, w) in workers.iter_mut().enumerate() {
        let mut cpu = rt.test_cpu(t);
        while let Some(body) = w.current.as_mut() {
            if w.th.step_op(&mut cpu, body.as_mut()).is_some() {
                w.current = None;
            }
        }
        garbage += w.th.free_set_len();
        w.th.force_full_scan(&mut cpu);
    }
    println!("free-set entries drained at teardown: {garbage}");
    shape.check_invariants_untimed(&heap);
    let keys = shape.collect_keys_untimed(&heap);
    println!("index holds {} keys; invariants verified", keys.len());
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
}
