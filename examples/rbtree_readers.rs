//! Algorithm 3, live: transactional red-black-tree readers racing a
//! rebalancing writer.
//!
//! The paper instruments `REDBLACK_TREE_SEARCH` as its running example of
//! split-checkpoint injection. This example runs that search — one
//! comparison per basic block, one checkpoint per block — under
//! StackTrack while a writer continuously inserts and deletes (forcing
//! rotations through the readers' paths), and shows:
//!
//! 1. readers are strictly serializable (a key present throughout is
//!    found by every search, rotations notwithstanding);
//! 2. deleted nodes are reclaimed by the stack/register scan;
//! 3. the split statistics of the searches (segments per op, lengths).
//!
//! Run with: `cargo run --release --example rbtree_readers`

use st_reclaim::SchemeThread;
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use st_structures::rbtree::{self, RbTree, RB_SLOTS};
use stacktrack::{StConfig, StRuntime};
use std::sync::Arc;

fn main() {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 21,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 2));
    let rt = StRuntime::new(
        engine.clone(),
        StConfig {
            initial_split_length: 4, // short segments: show real splitting
            ..StConfig::default()
        },
        2,
    );
    let mut reader = rt.register_thread(0);
    let mut writer = rt.register_thread(1);
    let mut cpu_r = rt.test_cpu(0);
    let mut cpu_w = rt.test_cpu(1);

    let tree = RbTree::new(heap.clone());
    for k in (10..=2000u64).step_by(10) {
        assert!(tree.insert(&mut writer, &mut cpu_w, k));
    }
    println!(
        "tree loaded: {} keys, invariants hold",
        tree.collect_keys().len()
    );
    tree.check_invariants();

    // The anchor key stays put; the writer churns keys around it.
    let anchor_key = 1010u64;
    let shape = tree.shape();
    let live_before = heap.stats().alloc.live_objects;

    let mut found = 0u64;
    let mut churn = 0u64;
    for round in 0..400u64 {
        let mut body = rbtree::search_body(shape, anchor_key);
        reader.begin_op(&mut cpu_r, rbtree::OP_SEARCH, RB_SLOTS);
        let mut result = None;
        while result.is_none() {
            result = reader.step_op(&mut cpu_r, &mut body);
            // One writer mutation between reader blocks.
            churn += 1;
            let k = churn % 500 + 1; // odd keys: never the anchor
            if round % 2 == 0 {
                let mut ins = rbtree::insert_body(shape, k * 2 + 1);
                SchemeThread::run_op(&mut writer, &mut cpu_w, 1, RB_SLOTS, &mut ins);
            } else {
                let mut del = rbtree::delete_body(shape, k * 2 + 1);
                SchemeThread::run_op(&mut writer, &mut cpu_w, 2, RB_SLOTS, &mut del);
            }
        }
        found += result.expect("completed");
    }
    println!("reader found the anchor key in {found}/400 searches (must be 400)");
    assert_eq!(found, 400, "serializable readers never miss a stable key");

    tree.check_invariants();
    let r = reader.stats();
    println!(
        "reader: {} ops, {:.1} segments/op, avg segment {:.1} blocks, {} aborts",
        r.ops,
        r.avg_splits_per_op(),
        r.avg_segment_length(),
        r.segment_aborts,
    );

    // Reclaim: writer retired every deleted node.
    writer.teardown(&mut cpu_w);
    reader.teardown(&mut cpu_r);
    let w = writer.stats();
    println!(
        "writer: {} FREE calls, {} scans, {} nodes freed",
        w.free_calls, w.scans, w.frees_completed
    );
    println!(
        "net live objects vs start: {:+}",
        heap.stats().alloc.live_objects as i64 - live_before as i64
    );
}
