//! Quickstart: a StackTrack-protected lock-free list in ~40 lines of use.
//!
//! Builds the simulated machine stack (heap -> best-effort HTM ->
//! StackTrack runtime), runs a few set operations through the
//! split-transactional executor, retires nodes, and shows that the
//! stack/register-scanning reclaimer actually returns memory.
//!
//! Run with: `cargo run --release --example quickstart`

use st_reclaim::SchemeThread;
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use st_structures::LockFreeList;
use stacktrack::{StConfig, StRuntime};
use std::sync::Arc;

fn main() {
    // 1. The substrate: a simulated heap guarded by a TL2-style
    //    best-effort HTM engine (the stand-in for Intel TSX).
    let heap = Arc::new(Heap::new(HeapConfig::default()));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));

    // 2. The StackTrack runtime: activity array, split predictor
    //    defaults from the paper (initial split length 50, +-1 after 5
    //    consecutive commits/aborts), scan batching.
    let rt = StRuntime::new(engine, StConfig::default(), 1);
    let mut thread = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);

    // 3. A Harris lock-free list whose operations run as chains of
    //    hardware transactions with automatic reclamation.
    let list = LockFreeList::new(heap.clone());

    let live_before = heap.stats().alloc.live_objects;
    for key in [20u64, 5, 30, 10, 25] {
        assert!(list.insert(&mut thread, &mut cpu, key));
    }
    println!("after inserts:  {:?}", list.collect_keys());

    assert!(list.contains(&mut thread, &mut cpu, 10));
    assert!(!list.contains(&mut thread, &mut cpu, 11));

    for key in [5u64, 25] {
        assert!(list.delete(&mut thread, &mut cpu, key));
    }
    println!("after deletes:  {:?}", list.collect_keys());

    // 4. Reclamation: deleted nodes sit in the free set until a scan of
    //    every thread's exposed stack/registers proves them unreferenced.
    println!(
        "free set before the scan: {} node(s)",
        thread.free_set_len()
    );
    thread.teardown(&mut cpu);
    let live_now = heap.stats().alloc.live_objects - live_before;
    println!("nodes alive after the scan: {live_now} (both deleted nodes reclaimed)");
    assert_eq!(live_now, 3, "three keys remain; two deletions were freed");

    // 5. The executor kept statistics the paper plots in Figures 3-5.
    let stats = thread.stats();
    println!(
        "ops: {}, committed segments: {}, avg splits/op: {:.2}, scans: {}",
        stats.ops,
        stats.committed_segments,
        stats.avg_splits_per_op(),
        stats.scans,
    );
    println!(
        "virtual time consumed: {:.1} microseconds",
        cpu.now() as f64 / 2_000.0
    );
}
