//! A producer/consumer pipeline on the Michael-Scott queue, comparing
//! reclamation schemes on the paper's most contended structure.
//!
//! Four producers feed four consumers through one shared queue on the
//! simulated 8-way machine. Every dequeue retires the old dummy node, so
//! sustained pipelines churn memory fast — exactly where leaking
//! ("Original") diverges from reclaiming schemes. The example runs the
//! same pipeline under Original, Epoch, Hazards, and StackTrack and
//! reports throughput plus outstanding garbage.
//!
//! Run with: `cargo run --release --example queue_pipeline`

use st_machine::{Cpu, SimConfig, Simulator, StepOutcome, Worker};
use st_reclaim::{Scheme, SchemeFactory, SchemeThread};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use st_structures::queue::{self, QueueShape};
use stacktrack::OpBody;
use std::sync::Arc;

const THREADS: usize = 8;

struct PipelineWorker {
    th: Box<dyn SchemeThread>,
    shape: QueueShape,
    producer: bool,
    sequence: u64,
    current: Option<Box<OpBody<'static>>>,
    consumed: u64,
}

impl Worker for PipelineWorker {
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
        if self.th.idle_work_pending() {
            self.th.step_idle(cpu);
            return StepOutcome::Progress;
        }
        if self.current.is_none() {
            let (op, body): (u32, Box<OpBody<'static>>) = if self.producer {
                self.sequence += 1;
                (
                    queue::OP_ENQUEUE,
                    Box::new(queue::enqueue_body(self.shape, self.sequence)),
                )
            } else {
                (queue::OP_DEQUEUE, Box::new(queue::dequeue_body(self.shape)))
            };
            self.th.begin_op(cpu, op, queue::QUEUE_SLOTS);
            self.current = Some(body);
            return StepOutcome::Progress;
        }
        let body = self.current.as_mut().expect("active op");
        match self.th.step_op(cpu, body.as_mut()) {
            Some(v) => {
                self.current = None;
                if !self.producer && v != 0 {
                    self.consumed += 1;
                }
                StepOutcome::OpDone
            }
            None => StepOutcome::Progress,
        }
    }
}

fn run_scheme(scheme: Scheme) {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 22,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), THREADS));
    let factory = SchemeFactory::builder(scheme)
        .engine(engine)
        .max_threads(THREADS)
        // A single-structure harness can size guard slots from the one
        // structure it drives.
        .guard_requirement(queue::guard_requirement())
        .build();
    let shape = QueueShape::new_untimed(&heap);
    for i in 0..64 {
        shape.enqueue_untimed(&heap, i + 1);
    }

    let sim = Simulator::new(SimConfig::haswell_ms(2, 99));
    let workers: Vec<PipelineWorker> = (0..THREADS)
        .map(|t| PipelineWorker {
            th: factory.thread(t),
            shape,
            producer: t % 2 == 0,
            sequence: 1_000_000 * (t as u64 + 1),
            current: None,
            consumed: 0,
        })
        .collect();
    let (report, workers) = sim.run(workers);

    let consumed: u64 = workers.iter().map(|w| w.consumed).sum();
    let garbage: u64 = workers.iter().map(|w| w.th.outstanding_garbage()).sum();
    println!(
        "{:<11} {:>8.2}M ops/s   items consumed: {:>6}   garbage nodes: {:>6}   live words: {}",
        scheme.name(),
        report.ops_per_second() / 1e6,
        consumed,
        garbage,
        heap.stats().alloc.live_words,
    );
}

fn main() {
    println!(
        "4 producers + 4 consumers, one Michael-Scott queue, 2 virtual ms on 4 cores x 2 SMT\n"
    );
    for scheme in [
        Scheme::None,
        Scheme::Epoch,
        Scheme::Hazard,
        Scheme::StackTrack,
    ] {
        run_scheme(scheme);
    }
    println!("\nNote the Original row's garbage: every dequeued dummy leaks.");
}
