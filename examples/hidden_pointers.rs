//! Interior ("hidden") pointers and the allocation-table range query —
//! the paper's section 5.5 scenario as a runnable demo.
//!
//! A thread keeps only a pointer *into the middle* of an array object in
//! its shadow stack (as code that indexes `&arr[k]` does). A reclaimer
//! then tries to free the array. With `interior_pointers` disabled the
//! scan misses the reference (the word does not equal the object's base
//! address) and the array is freed under the holder; with it enabled the
//! scanner resolves every scanned word through the heap's allocation
//! table — the paper's `malloc` hook — and the array survives.
//!
//! Run with: `cargo run --release --example hidden_pointers`

use st_machine::Cpu;
use st_reclaim::mem::{Atomic, Mem, NodeType, Unlinked};
use st_simheap::{Addr, Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use stacktrack::{OpMem, StConfig, StRuntime, Step};
use std::sync::Arc;

/// The 16-word array the demo hides an interior pointer into.
#[derive(Debug, Clone, Copy)]
struct ArrayNode;

impl NodeType for ArrayNode {
    const WORDS: usize = 16;
}

fn scenario(interior_pointers: bool) -> bool {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 18,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 2));
    let rt = StRuntime::new(
        engine,
        StConfig {
            interior_pointers,
            initial_split_length: 1, // commit every block: expose fast
            max_free: 0,             // scan on every retire
            ..StConfig::default()
        },
        2,
    );
    let mut holder = rt.register_thread(0);
    let mut reclaimer = rt.register_thread(1);
    let mut cpu_h = rt.test_cpu(0);
    let mut cpu_r = rt.test_cpu(1);

    // A shared cell points at a 16-word array.
    let cell = heap.alloc_untimed(1).expect("cell");
    let array = heap.alloc_untimed(16).expect("array");
    heap.poke(cell, 0, array.raw());

    // The holder computes &array[5] and keeps ONLY that interior pointer.
    // It stays on the raw shadow-stack surface on purpose: the typed API
    // deliberately has no way to stash an interior pointer — this is the
    // "hidden pointer" code pattern the scanner must cope with.
    holder.begin_op(&mut cpu_h, 0, 1);
    let mut hold = |m: &mut dyn OpMem, cpu: &mut Cpu| {
        if m.get_local(cpu, 0) == 0 {
            let base = m.load(cpu, cell, 0)?;
            let elem5 = Addr::from_raw(base).offset(5);
            m.set_local(cpu, 0, elem5.raw());
        }
        Ok(Step::Continue)
    };
    for _ in 0..3 {
        holder.step_op(&mut cpu_h, &mut hold);
    }

    // The reclaimer unlinks the array and retires it. It runs unguarded
    // (StackTrack's transactions protect its own reads), so the unlink is
    // a raw-word CAS whose victory is the `assume_unlinked` proof.
    use st_reclaim::SchemeThread;
    SchemeThread::run_op(&mut reclaimer, &mut cpu_r, 0, 1, &mut |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let a_cell = Atomic::<ArrayNode>::root(cell, 0);
        let cur = a_cell.load_word(&mut mem)?;
        if cur != 0 {
            a_cell.cas_word(&mut mem, cur, 0)?.expect("unlink");
            Unlinked::<ArrayNode>::assume_unlinked(cur).retire(&mut mem)?;
        }
        Ok(Step::Done(0))
    });
    while reclaimer.idle_work_pending() {
        reclaimer.step_idle(&mut cpu_r);
    }
    heap.is_live(array)
}

fn main() {
    println!("holder keeps &array[5]; reclaimer frees the array...\n");

    let survived = scenario(true);
    println!(
        "interior_pointers = true : array {} (range query resolved &array[5] -> base)",
        if survived { "SURVIVED" } else { "was freed" }
    );
    assert!(survived);

    let survived = scenario(false);
    println!(
        "interior_pointers = false: array {} (raw compare missed the interior word)",
        if survived { "SURVIVED" } else { "was freed" }
    );
    assert!(!survived);

    println!(
        "\nThe paper's rule: code may hide interior pointers to arrays/structs;\n\
         hooking allocation and answering range queries keeps such objects safe\n\
         (at the price of one range query per scanned word)."
    );
}
